// Package fmtserver implements PBIO's format server: a network service
// that assigns globally-meaningful identifiers to format descriptions and
// serves them back on demand.
//
// The transport layer can carry full meta-information in-band (its
// default), but in the deployed PBIO system a format server let many
// writers and readers share format identity across independent
// connections and files: a writer registers its format once and tags
// records with a small ID; any reader resolves an unknown ID with one
// round trip and caches the result forever.
//
// IDs here are content-addressed — the truncated SHA-256 of the format's
// canonical meta encoding — so registration is idempotent, identical
// layouts registered by different writers collide to the same ID by
// construction, and IDs are valid across server restarts.
//
// Wire protocol (TCP; all integers big-endian):
//
//	request:  u8 op, u32 payload length, payload
//	  op 1 (register): payload = meta block
//	  op 2 (lookup):   payload = 8-byte format ID
//	response: u8 status, u32 payload length, payload
//	  status 0 (ok):     register -> 8-byte ID; lookup -> meta block
//	  status 1 (error):  payload = ASCII message
package fmtserver

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flightrec"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracectx"
	"repro/internal/wire"
)

// Op codes.
const (
	opRegister = 1
	opLookup   = 2
)

// Status codes.
const (
	statusOK  = 0
	statusErr = 1
)

// opName maps an op code to its bounded trace label.
func opName(op byte) string {
	switch op {
	case opRegister:
		return "register"
	case opLookup:
		return "lookup"
	}
	return "other"
}

// maxPayload bounds request/response payloads.
const maxPayload = 1 << 20

// FormatID is a global, content-addressed format identifier.
type FormatID uint64

// IDOf computes the content-addressed ID of a format.
func IDOf(f *wire.Format) FormatID {
	sum := sha256.Sum256(wire.EncodeMeta(f))
	return FormatID(wire.BeUint64(sum[:8]))
}

// ErrUnknownFormat is returned by lookups of unregistered IDs.
var ErrUnknownFormat = errors.New("fmtserver: unknown format ID")

// Server is a format server instance.  Serve may be called on multiple
// listeners; the store is shared and safe for concurrent use.
type Server struct {
	mu      sync.RWMutex
	formats map[FormatID][]byte // ID -> canonical meta encoding
	counts  serverCounters
	tracer  atomic.Pointer[tracectx.Tracer]
	flight  atomic.Pointer[flightrec.Recorder]
}

// NewServer returns an empty format server.
func NewServer() *Server {
	return &Server{formats: make(map[FormatID][]byte)}
}

// Len returns the number of registered formats.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.formats)
}

// Serve accepts and serves connections until the listener is closed.
// It always returns a non-nil error (the accept error that stopped it).
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.counts.conns.Add(1)
	var hdr [5]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // client went away
		}
		op := hdr[0]
		n := int(wire.BeUint32(hdr[1:]))
		if n < 0 || n > maxPayload {
			s.counts.errors.Add(1)
			writeResp(conn, statusErr, []byte("payload too large"))
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		s.counts.requests.Add(1)
		if t := s.tracer.Load(); t != nil {
			start := time.Now()
			err := s.handle(conn, op, payload)
			t.Record(tracectx.Span{ID: t.NewID(), Name: tracectx.PhaseFmtsrv,
				Start: start, Dur: time.Since(start), Path: opName(op)})
			if err != nil {
				return
			}
			continue
		}
		if err := s.handle(conn, op, payload); err != nil {
			return
		}
	}
}

func (s *Server) handle(conn net.Conn, op byte, payload []byte) error {
	switch op {
	case opRegister:
		f, _, err := wire.DecodeMeta(payload)
		if err != nil {
			s.counts.errors.Add(1)
			return writeResp(conn, statusErr, []byte(err.Error()))
		}
		// Store the canonical re-encoding, not the client's bytes, so
		// the ID always matches the stored content.
		canonical := wire.EncodeMeta(f)
		id := IDOf(f)
		s.mu.Lock()
		s.formats[id] = canonical
		s.mu.Unlock()
		s.counts.registers.Add(1)
		s.flight.Load().Emit(flightrec.KindFmtRegister, f.Name, 0, int64(id), 0)
		var idBuf [8]byte
		wire.PutBeUint64(idBuf[:], uint64(id))
		return writeResp(conn, statusOK, idBuf[:])
	case opLookup:
		if len(payload) != 8 {
			s.counts.errors.Add(1)
			return writeResp(conn, statusErr, []byte("lookup payload must be 8 bytes"))
		}
		id := FormatID(wire.BeUint64(payload))
		s.mu.RLock()
		meta, ok := s.formats[id]
		s.mu.RUnlock()
		if !ok {
			s.counts.misses.Add(1)
			return writeResp(conn, statusErr, []byte(ErrUnknownFormat.Error()))
		}
		s.counts.lookups.Add(1)
		return writeResp(conn, statusOK, meta)
	default:
		s.counts.errors.Add(1)
		return writeResp(conn, statusErr, []byte(fmt.Sprintf("unknown op %d", op)))
	}
}

func writeResp(w io.Writer, status byte, payload []byte) error {
	hdr := [5]byte{status}
	wire.PutBeUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client talks to a format server and caches results.  A Client is safe
// for concurrent use; requests are serialized over one connection.
//
// A Client built with Dial retries failed round trips with exponential
// backoff over a fresh connection — a format server restart or a dropped
// connection is invisible to callers as long as the server comes back
// within the retry budget.  IDs are content-addressed, so a re-sent
// register is idempotent and retries are always safe.
type Client struct {
	mu   sync.Mutex
	conn net.Conn

	// redial, when set, reconnects after a round-trip failure.  attempts
	// is the total number of tries per round trip (min 1) and backoff
	// the delay before the first retry, doubling each retry after that.
	redial   func() (net.Conn, error)
	attempts int
	backoff  time.Duration

	// timeout, when nonzero, bounds each round trip attempt's I/O with a
	// connection deadline.
	timeout time.Duration

	cacheMu sync.RWMutex
	byID    map[FormatID]*wire.Format
	ids     map[string]FormatID // fingerprint -> ID

	counts clientCounters
	trace  atomic.Pointer[telemetry.TraceRing]
	tracer atomic.Pointer[tracectx.Tracer]
	flight atomic.Pointer[flightrec.Recorder]
}

// Retry defaults for Dial-built clients.
const (
	defaultAttempts = 4
	defaultBackoff  = 25 * time.Millisecond
)

// Dial connects to a format server.  The returned client redials and
// retries failed round trips with exponential backoff.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fmtserver: %w", err)
	}
	c := NewClient(conn)
	c.redial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	c.attempts = defaultAttempts
	return c, nil
}

// NewClient wraps an established connection.  Without a redial function
// (see SetRedial) the client cannot retry: a mid-request failure leaves
// the byte stream unsynchronized, so reusing the connection is unsafe.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:     conn,
		attempts: 1,
		backoff:  defaultBackoff,
		byID:     make(map[FormatID]*wire.Format),
		ids:      make(map[string]FormatID),
	}
}

// SetRedial equips the client to replace its connection after a failure,
// enabling retries.
func (c *Client) SetRedial(fn func() (net.Conn, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.redial = fn
	if c.attempts < defaultAttempts {
		c.attempts = defaultAttempts
	}
}

// SetRetry configures the per-round-trip attempt budget and the initial
// backoff delay (doubled before each subsequent retry).
func (c *Client) SetRetry(attempts int, backoff time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	c.attempts = attempts
	c.backoff = backoff
}

// SetTimeout bounds each round-trip attempt with a connection deadline.
// Zero disables.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Register registers a format and returns its global ID.  Results are
// cached; re-registering a known layout makes no network round trip.
func (c *Client) Register(f *wire.Format) (FormatID, error) {
	fp := f.Fingerprint()
	c.cacheMu.RLock()
	id, ok := c.ids[fp]
	c.cacheMu.RUnlock()
	if ok {
		c.counts.cacheHits.Add(1)
		return id, nil
	}
	status, payload, err := c.roundTrip(opRegister, wire.EncodeMeta(f))
	if err != nil {
		return 0, err
	}
	if status != statusOK {
		return 0, fmt.Errorf("fmtserver: register: %s", payload)
	}
	if len(payload) != 8 {
		return 0, fmt.Errorf("fmtserver: register: bad response length %d", len(payload))
	}
	id = FormatID(wire.BeUint64(payload))
	c.cacheMu.Lock()
	c.ids[fp] = id
	c.byID[id] = f
	c.cacheMu.Unlock()
	return id, nil
}

// Lookup resolves a format ID, consulting the local cache first.
func (c *Client) Lookup(id FormatID) (*wire.Format, error) {
	c.cacheMu.RLock()
	f, ok := c.byID[id]
	c.cacheMu.RUnlock()
	if ok {
		c.counts.cacheHits.Add(1)
		return f, nil
	}
	var idBuf [8]byte
	wire.PutBeUint64(idBuf[:], uint64(id))
	status, payload, err := c.roundTrip(opLookup, idBuf[:])
	if err != nil {
		return nil, err
	}
	if status != statusOK {
		if string(payload) == ErrUnknownFormat.Error() {
			return nil, ErrUnknownFormat
		}
		return nil, fmt.Errorf("fmtserver: lookup: %s", payload)
	}
	f, _, err = wire.DecodeMeta(payload)
	if err != nil {
		return nil, err
	}
	// Defend against a corrupt or lying server: the content address of
	// what we received must be the ID we asked for.
	if IDOf(f) != id {
		return nil, fmt.Errorf("fmtserver: lookup: content hash mismatch for ID %#x", uint64(id))
	}
	c.cacheMu.Lock()
	c.byID[id] = f
	c.ids[f.Fingerprint()] = id
	c.cacheMu.Unlock()
	return f, nil
}

// roundTrip performs one request/response exchange, retrying over a fresh
// connection with exponential backoff when the client has a redial
// function.  A retry never reuses a connection that failed mid-request:
// the stream may hold half a message, so resynchronizing is impossible —
// reconnect-and-resend is the only safe recovery, and the protocol's
// idempotent requests make it correct.
func (c *Client) roundTrip(op byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts.requests.Add(1)
	if t := c.tracer.Load(); t != nil {
		start := time.Now()
		defer func() {
			t.Record(tracectx.Span{ID: t.NewID(), Name: tracectx.PhaseFmtsrv,
				Start: start, Dur: time.Since(start), Path: opName(op)})
		}()
	}
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			if c.redial == nil {
				break
			}
			c.counts.retries.Add(1)
			c.trace.Load().Emit("fmtserver", "retry", fmt.Sprintf("attempt %d: %v", attempt+1, lastErr))
			c.flight.Load().Emit(flightrec.KindFmtRetry, opName(op), 0, int64(attempt+1), 0)
			//pbiovet:allow lockcheck — c.mu serializes the one-request-at-a-time protocol on this connection; backing off while holding it just extends the current request's turn.
			time.Sleep(c.backoff << (attempt - 1))
			conn, err := c.redial()
			if err != nil {
				lastErr = fmt.Errorf("fmtserver: redial: %w", err)
				continue
			}
			c.counts.redials.Add(1)
			c.trace.Load().Emit("fmtserver", "redial", "")
			c.flight.Load().Emit(flightrec.KindConnOpen, "fmtserver redial", 0, 0, 0)
			c.conn.Close()
			c.conn = conn
		}
		//pbiovet:allow lockcheck — the request/response exchange is what c.mu serializes: a second caller must not interleave frames on the shared connection, so the I/O happens under the lock by design.
		status, resp, err := c.do(op, payload)
		if err == nil {
			return status, resp, nil
		}
		lastErr = err
	}
	if c.attempts > 1 {
		return 0, nil, fmt.Errorf("fmtserver: %d attempts failed, last: %w", c.attempts, lastErr)
	}
	return 0, nil, lastErr
}

// do performs a single request/response attempt on the current
// connection.  Callers hold c.mu.
func (c *Client) do(op byte, payload []byte) (byte, []byte, error) {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	var hdr [5]byte
	hdr[0] = op
	wire.PutBeUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("fmtserver: send: %w", err)
	}
	if _, err := c.conn.Write(payload); err != nil {
		return 0, nil, fmt.Errorf("fmtserver: send: %w", err)
	}
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("fmtserver: recv: %w", err)
	}
	n := int(wire.BeUint32(hdr[1:]))
	if n < 0 || n > maxPayload {
		return 0, nil, fmt.Errorf("fmtserver: recv: payload %d out of range", n)
	}
	resp := make([]byte, n)
	if _, err := io.ReadFull(c.conn, resp); err != nil {
		return 0, nil, fmt.Errorf("fmtserver: recv: %w", err)
	}
	return hdr[0], resp, nil
}
