package fmtserver

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/wire"
)

// garbageServer accepts one connection and answers every request with the
// canned response bytes.
func garbageServer(t *testing.T, response []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					// Read a request header + payload, then reply with
					// garbage.
					var hdr [5]byte
					if _, err := io.ReadFull(c, hdr[:]); err != nil {
						return
					}
					n := int(binary.BigEndian.Uint32(hdr[1:]))
					if n > len(buf) {
						buf = make([]byte, n)
					}
					if _, err := io.ReadFull(c, buf[:n]); err != nil {
						return
					}
					if _, err := c.Write(response); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func respond(status byte, payload []byte) []byte {
	out := make([]byte, 5+len(payload))
	out[0] = status
	binary.BigEndian.PutUint32(out[1:], uint32(len(payload)))
	copy(out[5:], payload)
	return out
}

func TestClientSurvivesGarbageResponses(t *testing.T) {
	f := wire.MustLayout(testSchema(), &abi.SparcV8)
	cases := []struct {
		name string
		resp []byte
	}{
		{"empty ok register", respond(statusOK, nil)},              // wrong length for an ID
		{"error status", respond(statusErr, []byte("nope"))},       // server-side error
		{"truncated header", []byte{0}},                            // connection starves
		{"oversized payload", []byte{0, 0xFF, 0xFF, 0xFF, 0xFF}},   // length bomb
		{"ok with junk meta", respond(statusOK, []byte("<<junk"))}, // undecodable meta on lookup
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			addr := garbageServer(t, c.resp)
			client, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			// Single attempt with a timeout: a garbage server stays
			// garbage, so retries would only repeat the failure, and a
			// starving response must fail rather than hang.
			client.SetRetry(1, 0)
			client.SetTimeout(500 * time.Millisecond)
			if _, err := client.Register(f); err == nil {
				t.Error("Register accepted a garbage response")
			}
			c2, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			c2.SetRetry(1, 0)
			c2.SetTimeout(500 * time.Millisecond)
			if _, err := c2.Lookup(FormatID(42)); err == nil {
				t.Error("Lookup accepted a garbage response")
			}
		})
	}
}

func TestClientLookupRejectsContentMismatch(t *testing.T) {
	// A lying server returns a VALID meta block that does not hash to
	// the requested ID; the client must refuse it.
	f := wire.MustLayout(testSchema(), &abi.SparcV8)
	addr := garbageServer(t, respond(statusOK, wire.EncodeMeta(f)))
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	wrongID := IDOf(f) + 1
	if _, err := client.Lookup(wrongID); err == nil {
		t.Error("client accepted a format whose content hash mismatches the ID")
	}
	// Asking for the RIGHT id succeeds.
	if got, err := client.Lookup(IDOf(f)); err != nil || !wire.SameLayout(got, f) {
		t.Errorf("honest lookup failed: %v", err)
	}
}
