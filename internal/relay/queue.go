package relay

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
)

// QueuePolicy decides what happens when a consumer's bounded queue is
// full at enqueue time.  Whatever the choice, a slow consumer can no
// longer make the relay buffer without bound: the queue is the whole
// budget that consumer gets.
type QueuePolicy int

const (
	// PolicyDisconnect drops the consumer: its queued frames are still
	// flushed, but the overflowing frame and the connection are gone.
	// This is the relay's historical behavior and the default.
	PolicyDisconnect QueuePolicy = iota
	// PolicyDropOldest evicts the oldest queued *data* frame to admit
	// the new one — meta frames are never evicted (a consumer that
	// missed a format's meta can never decode that format again, so
	// dropping meta is protocol-fatal rather than lossy; meta is rare
	// and bounded by the format count, so preserving it cannot unbound
	// the queue in any practical stream).  The consumer stays connected
	// and always sees the newest data; every evicted frame (and the
	// records it carried) is counted, never silently lost.
	PolicyDropOldest
	// PolicyBlock makes the broadcasting producer wait for space.  No
	// record is ever lost, at the price the paper's flat-consumer relay
	// always paid: the slowest subscriber paces the stream.
	PolicyBlock
)

// String returns the flag-level spelling of the policy.
func (p QueuePolicy) String() string {
	switch p {
	case PolicyDisconnect:
		return "disconnect"
	case PolicyDropOldest:
		return "drop-oldest"
	case PolicyBlock:
		return "block"
	}
	return fmt.Sprintf("QueuePolicy(%d)", int(p))
}

// ParseQueuePolicy parses the flag-level spelling of a policy.
func ParseQueuePolicy(s string) (QueuePolicy, error) {
	switch s {
	case "disconnect":
		return PolicyDisconnect, nil
	case "drop-oldest":
		return PolicyDropOldest, nil
	case "block":
		return PolicyBlock, nil
	}
	return 0, fmt.Errorf("relay: unknown queue policy %q (want disconnect, drop-oldest or block)", s)
}

// pushResult reports how an enqueue resolved.
type pushResult int

const (
	pushOK       pushResult = iota
	pushOverflow            // full under PolicyDisconnect: caller drops the consumer
	pushClosed              // queue closed; frame was released
)

// frameQueue is one consumer's bounded frame buffer: a mutex-guarded
// ring with condition variables on both edges.  A channel cannot express
// drop-oldest (no way to evict the head) or exact accounting of what was
// evicted, so the queue is explicit.
//
// Ownership: push takes the frame's pooled-payload reference.  Frames
// that never reach pop — evicted, or pushed after close — are released
// inside the queue, so every reference is balanced no matter how the
// consumer dies.
type frameQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond

	buf    []outFrame
	head   int // index of the oldest frame
	n      int // frames queued
	policy QueuePolicy
	closed bool

	// Eviction accounting (PolicyDropOldest), read by Stats and the
	// queue-depth gauges under mu.
	droppedFrames  int64
	droppedRecords int64

	// lastDrain is when pop last handed a frame to the consumer pump
	// (creation time until then) — the stall detector's signal: a queue
	// holding frames whose lastDrain is older than the stall window has
	// a consumer that stopped draining.
	lastDrain time.Time

	// onEvict, when set, observes every frame evicted by drop-oldest
	// (called with mu held; must not re-enter the queue) — the relay
	// uses it to count lost traced records on the tracer.
	onEvict func(of outFrame)
}

func newFrameQueue(capacity int, policy QueuePolicy, onEvict func(outFrame)) *frameQueue {
	if capacity < 1 {
		capacity = 1
	}
	q := &frameQueue{
		buf:       make([]outFrame, capacity),
		policy:    policy,
		onEvict:   onEvict,
		lastDrain: time.Now(),
	}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// push enqueues one frame, resolving a full queue by policy.  It takes
// ownership of the frame's payload reference: on any outcome other than
// a successful enqueue the reference is released before returning.
// Under PolicyBlock a full queue makes push wait for space, so callers
// must not hold any lock the popping consumer might need — the relay
// calls it only outside the server lock.
func (q *frameQueue) push(of outFrame) pushResult {
	q.mu.Lock()
	for q.n == len(q.buf) && !q.closed && q.policy == PolicyBlock {
		q.notFull.Wait()
	}
	return q.pushLocked(of)
}

// pushNoWait is push for callers that must never wait — the relay's
// non-blocking fan-out calls it with the server lock held.  A full
// PolicyBlock queue resolves as overflow (the caller drops the
// consumer) instead of waiting; that mix is only possible when the
// consumer registered under PolicyBlock before SetQueue switched the
// server to a non-blocking policy, and waiting here would stall every
// producer on the server lock.
func (q *frameQueue) pushNoWait(of outFrame) pushResult {
	q.mu.Lock()
	return q.pushLocked(of)
}

// pushLocked resolves a full queue by non-blocking policy and enqueues.
// The caller holds mu; pushLocked releases it.
func (q *frameQueue) pushLocked(of outFrame) pushResult {
	for q.n == len(q.buf) && !q.closed {
		switch q.policy {
		case PolicyDropOldest:
			if q.evictOldestDataLocked() {
				continue
			}
			// Every queued frame is meta.  An incoming meta frame gets
			// the ring grown for it (meta is bounded by format count);
			// an incoming data frame is itself the oldest-and-only data
			// here, so it is the one dropped — counted like any other.
			if isMetaFrame(of.f) {
				q.grow()
				continue
			}
			q.droppedFrames++
			q.droppedRecords += int64(of.recs)
			of.owner.release()
			if q.onEvict != nil {
				q.onEvict(of)
			}
			q.mu.Unlock()
			return pushOK
		default: // PolicyDisconnect, or PolicyBlock without leave to wait
			q.mu.Unlock()
			of.owner.release()
			return pushOverflow
		}
	}
	if q.closed {
		q.mu.Unlock()
		of.owner.release()
		return pushClosed
	}
	q.buf[(q.head+q.n)%len(q.buf)] = of
	q.n++
	of.fstats.queueAdd(1)
	q.notEmpty.Signal()
	q.mu.Unlock()
	return pushOK
}

// isMetaFrame reports whether a frame is in the never-evict class:
// format meta-information (a consumer that missed meta can never decode
// that format again) and subscription control frames (the mesh identity
// handshake — one per downstream relay, so preserving them is bounded).
func isMetaFrame(f transport.Frame) bool {
	k := f.BaseKind()
	return k == transport.FrameMeta || k == transport.FrameMetaRef || k == transport.FrameSub
}

// evictOldestDataLocked removes and accounts the oldest queued data
// frame, reporting false when only meta frames are queued.  Meta frames
// older than the victim shift down one slot, so relative order is
// preserved.  Caller holds mu.
func (q *frameQueue) evictOldestDataLocked() bool {
	for k := 0; k < q.n; k++ {
		i := (q.head + k) % len(q.buf)
		of := q.buf[i]
		if isMetaFrame(of.f) {
			continue
		}
		for j := k; j > 0; j-- {
			q.buf[(q.head+j)%len(q.buf)] = q.buf[(q.head+j-1)%len(q.buf)]
		}
		q.buf[q.head] = outFrame{}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		of.fstats.queueAdd(-1)
		q.droppedFrames++
		q.droppedRecords += int64(of.recs)
		// Releasing and accounting under mu is safe: neither the pool
		// nor the tracer can re-enter the queue, and holding the lock
		// keeps evictions strictly ordered with pushes.
		of.owner.release()
		if q.onEvict != nil {
			q.onEvict(of)
		}
		return true
	}
	return false
}

// grow doubles the ring, unwinding the wrap.  Only meta preservation can
// trigger it, so growth is bounded by the stream's format count.
func (q *frameQueue) grow() {
	buf := make([]outFrame, 2*len(q.buf))
	for k := 0; k < q.n; k++ {
		buf[k] = q.buf[(q.head+k)%len(q.buf)]
	}
	q.buf, q.head = buf, 0
}

// pop dequeues the oldest frame, blocking while the queue is open and
// empty.  ok is false once the queue is closed and drained — queued
// frames survive close, so a dropped consumer still flushes what it was
// promised.
func (q *frameQueue) pop() (of outFrame, ok bool) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return outFrame{}, false
	}
	of = q.buf[q.head]
	q.buf[q.head] = outFrame{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	of.fstats.queueAdd(-1)
	q.lastDrain = time.Now()
	q.notFull.Signal()
	q.mu.Unlock()
	return of, true
}

// close marks the queue closed, waking blocked producers and the
// consumer pump.  Idempotent; queued frames remain poppable.
func (q *frameQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	q.mu.Unlock()
}

// drain releases every queued frame.  Called by the consumer pump when
// it stops writing (peer gone) so pooled payloads recycle even though
// the frames will never reach the wire.
func (q *frameQueue) drain() {
	for {
		of, ok := q.pop()
		if !ok {
			return
		}
		of.owner.release()
	}
}

// depth returns the number of queued frames.
func (q *frameQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// queueState is a point-in-time snapshot of one consumer queue, taken
// in a single lock acquisition for /debug/mesh and the stall detector.
type queueState struct {
	depth          int
	capacity       int // current ring size (grows only to preserve meta)
	policy         QueuePolicy
	droppedFrames  int64
	droppedRecords int64
	lastDrain      time.Time
}

// state snapshots the queue.
func (q *frameQueue) state() queueState {
	q.mu.Lock()
	defer q.mu.Unlock()
	return queueState{
		depth:          q.n,
		capacity:       len(q.buf),
		policy:         q.policy,
		droppedFrames:  q.droppedFrames,
		droppedRecords: q.droppedRecords,
		lastDrain:      q.lastDrain,
	}
}

// dropped returns the eviction counters (frames, records).
func (q *frameQueue) dropped() (frames, records int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.droppedFrames, q.droppedRecords
}
