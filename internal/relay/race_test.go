package relay

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/pbio"
)

// TestRelayBroadcastDropCloseRace hammers the three paths that share the
// consumer table — live broadcast, slow-consumer drop, and server Close —
// from many goroutines at once.  It asserts nothing about delivery; the
// point is that `go test -race` finds no data race and no goroutine
// survives the teardown.
func TestRelayBroadcastDropCloseRace(t *testing.T) {
	leakcheck.Check(t)

	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pln.Close()
		t.Skipf("no loopback listener: %v", err)
	}
	s := NewServer()
	s.SetTimeouts(2*time.Second, 200*time.Millisecond)
	go func() { _ = s.ServeProducers(pln) }()
	go func() { _ = s.ServeConsumers(cln) }()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Producers: write records flat out until told to stop.
	for pi := 0; pi < 3; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", pln.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			ctx, f := producerCtx(t, "sparc-v8")
			w := ctx.NewWriter(conn)
			w.SetTimeout(time.Second)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := f.NewRecord()
				rec.MustSetInt("seq", 0, int64(i))
				rec.MustSetFloat("v", 0, float64(i)*0.5)
				if w.Write(rec) != nil {
					return
				}
			}
		}(pi)
	}

	// Consumers: connect, read a little, disconnect abruptly, reconnect.
	// Half of them stall instead of reading, to exercise the drop path.
	for ci := 0; ci < 6; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := net.Dial("tcp", cln.Addr().String())
				if err != nil {
					return
				}
				if ci%2 == 0 {
					// Reader: drain a few messages then hang up mid-stream.
					ctx, _ := pbio.NewContext(pbio.WithArch("x86"))
					r := ctx.NewReader(conn)
					r.SetTimeout(time.Second)
					for i := 0; i < 5; i++ {
						if _, err := r.Read(); err != nil {
							break
						}
					}
				} else {
					// Staller: never read; the relay must drop us.
					time.Sleep(50 * time.Millisecond)
				}
				conn.Close()
			}
		}(ci)
	}

	// Let traffic flow, then tear everything down while it is flowing.
	time.Sleep(300 * time.Millisecond)
	s.Close()
	close(stop)
	pln.Close()
	cln.Close()
	wg.Wait()

	// Stats must be coherent after the storm (read under the lock).
	st := s.Stats()
	if st.Frames < 0 || st.ForwardedBytes < 0 {
		t.Errorf("stats went negative: %+v", st)
	}
}
