package relay

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMeshIdentityHandshake wires a child relay below a parent over a
// pipe and checks both halves of the handshake: the parent learns the
// child's identity from its subscription (and lists it as downstream),
// the child learns the parent's from the reply.
func TestMeshIdentityHandshake(t *testing.T) {
	parent := NewServer()
	child := NewServer()
	parent.SetNodeInfo("root", "127.0.0.1:9850")
	child.SetNodeInfo("leaf-0", "127.0.0.1:9851")
	defer parent.Close()
	defer child.Close()

	a, b := net.Pipe()
	if !parent.AddConsumerConn(a) {
		t.Fatal("parent refused the consumer connection")
	}
	go child.RunUplinkTo(b, nil, "parent.example:7851")

	waitFor(t, "parent to see the child's identity", func() bool {
		info := parent.MeshSnapshot()
		return len(info.Downstream) == 1 && info.Downstream[0].ID == "leaf-0"
	})
	info := parent.MeshSnapshot()
	if got := info.Downstream[0].MeshAddr; got != "127.0.0.1:9851" {
		t.Errorf("downstream mesh addr = %q, want the child's", got)
	}
	if len(info.Consumers) != 1 || info.Consumers[0].NodeID != "leaf-0" {
		t.Errorf("consumers = %+v, want one with the child's node ID", info.Consumers)
	}
	if info.Node.ID != "root" {
		t.Errorf("parent node ID = %q", info.Node.ID)
	}

	waitFor(t, "child to see the parent's identity", func() bool {
		info := child.MeshSnapshot()
		return len(info.Uplinks) == 1 && info.Uplinks[0].NodeID == "root"
	})
	up := child.MeshSnapshot().Uplinks[0]
	if up.Addr != "parent.example:7851" {
		t.Errorf("uplink addr = %q, want the dialed address", up.Addr)
	}
	if up.MeshAddr != "127.0.0.1:9850" {
		t.Errorf("uplink mesh addr = %q, want the parent's", up.MeshAddr)
	}
	if !up.All {
		t.Errorf("uplink subscription = %+v, want the all-default", up)
	}
}

// stuckConsumerRelay builds a relay with one consumer that never reads
// (its pump blocks on the first pipe write) and one pipe producer, and
// publishes n records of the "sample" format through it.  The first
// record goes out alone, and the helper waits for the consumer pump to
// pop the meta frame (queue depth settles at 1: just that data frame)
// before flooding the rest — so exactly the queue's capacity of data
// frames ends up held and the eviction count is deterministic.
func stuckConsumerRelay(t *testing.T, s *Server, n int) {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { c2.Close() })
	if !s.AddConsumerConn(c1) {
		t.Fatal("relay refused the consumer connection")
	}

	p1, p2 := net.Pipe()
	s.AddProducerConn(p1)
	ctx, f := producerCtx(t, "x86")
	w := ctx.NewWriter(p2)
	write := func(i int) {
		rec := f.NewRecord()
		rec.MustSetInt("seq", 0, int64(i))
		rec.MustSetFloat("v", 0, float64(i)*0.5)
		rec.MustSetString("tag", "pub")
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	write(0)
	// Queue depth 1 with format occupancy 1 means exactly one *data*
	// frame is queued — the meta frame has been popped and the pump is
	// blocked writing it.
	waitFor(t, "the pump to pop the meta frame", func() bool {
		info := s.MeshSnapshot()
		return len(info.Consumers) == 1 && info.Consumers[0].QueueDepth == 1 &&
			len(info.Formats) == 1 && info.Formats[0].Queued == 1
	})
	for i := 1; i < n; i++ {
		write(i)
	}
	p2.Close()

	// The producer goroutine broadcasts asynchronously; settle before
	// the caller asserts exact counts.
	waitFor(t, "all frames to be accounted", func() bool {
		info := s.MeshSnapshot()
		return len(info.Formats) == 1 && info.Formats[0].Frames == int64(n)
	})
}

// TestMeshPerFormatAccounting drives 20 records at a stuck consumer
// whose 4-frame drop-oldest queue must evict 16, and checks that the
// per-format accounting conserves: frames broadcast == queued + dropped.
func TestMeshPerFormatAccounting(t *testing.T) {
	s := NewServer()
	s.SetQueue(4, PolicyDropOldest)
	defer s.Close()
	stuckConsumerRelay(t, s, 20)

	fi := s.MeshSnapshot().Formats[0]
	if fi.Name != "sample" {
		t.Fatalf("format name = %q, want sample", fi.Name)
	}
	if fi.Frames != 20 || fi.Records != 20 {
		t.Errorf("forwarded = %d frames / %d records, want 20/20", fi.Frames, fi.Records)
	}
	if fi.Bytes == 0 {
		t.Errorf("forwarded bytes = 0, want > 0")
	}
	// Conservation: every broadcast frame is either still queued or was
	// dropped (none were delivered — the consumer never read a byte).
	if fi.Queued+fi.DroppedFrames != fi.Frames {
		t.Errorf("conservation violated: %d queued + %d dropped != %d broadcast",
			fi.Queued, fi.DroppedFrames, fi.Frames)
	}
	if fi.DroppedRecords != 16 {
		t.Errorf("dropped records = %d, want 16", fi.DroppedRecords)
	}

	// The per-consumer view must agree with the per-format one.
	ci := s.MeshSnapshot().Consumers[0]
	if ci.DroppedFrames != 16 || ci.QueueDepth != 4 || ci.QueueCap != 4 {
		t.Errorf("consumer view = %+v, want 16 dropped, depth 4/4", ci)
	}
	if ci.Policy != "drop-oldest" {
		t.Errorf("consumer policy = %q", ci.Policy)
	}
}

// TestStallDetectorAndGauges: a consumer holding undrained frames past
// the stall window is flagged — in StalledConsumers, in /debug/mesh,
// and on the stalled-consumers gauge, which must agree with the depth
// gauges computed in the same single pass.
func TestStallDetectorAndGauges(t *testing.T) {
	s := NewServer()
	s.SetQueue(4, PolicyDropOldest)
	s.SetStallWindow(50 * time.Millisecond)
	reg := telemetry.NewRegistry()
	s.SetTelemetry(reg)
	defer s.Close()
	stuckConsumerRelay(t, s, 8)

	waitFor(t, "the stall detector to flag the stuck consumer", func() bool {
		return s.StalledConsumers() == 1
	})
	info := s.MeshSnapshot()
	if len(info.Consumers) != 1 || !info.Consumers[0].Stalled {
		t.Errorf("consumers = %+v, want one stalled", info.Consumers)
	}
	if info.StallWindowMS != 50 {
		t.Errorf("stall window = %dms, want 50", info.StallWindowMS)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"pbio_relay_queue_depth_frames 4",
		"pbio_relay_queue_depth_max_frames 4",
		"pbio_relay_stalled_consumers 1",
		`pbio_relay_format_forwarded_records_total{format="sample"} 8`,
		`pbio_relay_format_dropped_frames_total{format="sample"} 4`,
		`pbio_relay_format_queued_frames{format="sample"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMeshHandlerJSON: /debug/mesh serves the snapshot as JSON that
// round-trips into MeshInfo — the contract the pbio-mon crawler relies
// on.
func TestMeshHandlerJSON(t *testing.T) {
	s := NewServer()
	s.SetNodeInfo("hop-0-0", "127.0.0.1:9850")
	defer s.Close()
	stuckConsumerRelay(t, s, 3)
	waitFor(t, "frames to reach the consumer queue", func() bool {
		return len(s.MeshSnapshot().Formats) == 1
	})

	srv := httptest.NewServer(s.MeshHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/mesh")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content-type = %q", ct)
	}
	var info MeshInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding /debug/mesh: %v", err)
	}
	if info.Node.ID != "hop-0-0" || info.Node.MeshAddr != "127.0.0.1:9850" {
		t.Errorf("node = %+v", info.Node)
	}
	if len(info.Formats) != 1 || info.Formats[0].Name != "sample" {
		t.Errorf("formats = %+v", info.Formats)
	}
	if info.Stats.Frames == 0 {
		t.Errorf("stats did not ride the snapshot: %+v", info.Stats)
	}
}

// TestFormatStatsOverflowBucket: past the cardinality bound, accounting
// collapses into the shared overflow bucket instead of growing without
// limit.
func TestFormatStatsOverflowBucket(t *testing.T) {
	s := NewServer()
	s.mu.Lock()
	for i := 0; i < maxFormatStats; i++ {
		s.fstatsForLocked(fmt.Sprintf("f%d", i))
	}
	over1 := s.fstatsForLocked("one-more")
	over2 := s.fstatsForLocked("and-another")
	known := s.fstatsForLocked("f7")
	s.mu.Unlock()
	if over1.name != overflowFormat || over1 != over2 {
		t.Errorf("formats past the bound must share the %q bucket", overflowFormat)
	}
	if known.name != "f7" {
		t.Errorf("existing format resolved to %q, want its own bucket", known.name)
	}
	info := s.MeshSnapshot()
	if len(info.Formats) != maxFormatStats+1 {
		t.Errorf("snapshot lists %d formats, want %d (bound + overflow)", len(info.Formats), maxFormatStats+1)
	}
}
