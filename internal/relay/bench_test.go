package relay

import (
	"net"
	"sync"
	"testing"

	"repro/pbio"
)

// BenchmarkRelayFanOut measures per-record fan-out latency through the
// relay: one 10Kb-class record published, decoded by two consumers on a
// different (simulated) architecture, per iteration.  Pacing on consumer
// acknowledgment keeps the producer inside the relay's per-consumer
// queue bound (slow consumers are dropped by policy, not buffered
// without limit).
func BenchmarkRelayFanOut(b *testing.B) {
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Skipf("no loopback listener: %v", err)
	}
	defer pln.Close()
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Skipf("no loopback listener: %v", err)
	}
	defer cln.Close()
	s := NewServer()
	go func() { _ = s.ServeProducers(pln) }()
	go func() { _ = s.ServeConsumers(cln) }()
	defer s.Close()

	fields := []pbio.FieldSpec{
		pbio.F("seq", pbio.Int),
		pbio.Array("values", pbio.Double, 1245),
	}

	const consumers = 2
	acks := make(chan struct{}, consumers*4)
	ready := make(chan struct{}, consumers)
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", cln.Addr().String())
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			ctx, err := pbio.NewContext(pbio.WithArch("x86"))
			if err != nil {
				b.Error(err)
				return
			}
			f, err := ctx.Register("r", fields...)
			if err != nil {
				b.Error(err)
				return
			}
			ready <- struct{}{}
			r := ctx.NewReader(conn)
			out := f.NewRecord()
			for i := 0; i < b.N; i++ {
				m, err := r.Read()
				if err != nil {
					b.Error(err)
					return
				}
				if err := m.DecodeInto(f, out); err != nil {
					b.Error(err)
					return
				}
				acks <- struct{}{}
			}
		}()
	}
	for c := 0; c < consumers; c++ {
		<-ready
	}

	conn, err := net.Dial("tcp", pln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	ctx, err := pbio.NewContext(pbio.WithArch("sparc-v8"))
	if err != nil {
		b.Fatal(err)
	}
	f, err := ctx.Register("r", fields...)
	if err != nil {
		b.Fatal(err)
	}
	w := ctx.NewWriter(conn)
	rec := f.NewRecord()
	b.SetBytes(int64(f.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.MustSetInt("seq", 0, int64(i))
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
		for c := 0; c < consumers; c++ {
			<-acks
		}
	}
	wg.Wait()
}
