package relay

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/flightrec"
	"repro/internal/transport"
)

// Uplink is a relay's connection to an upstream hop in a mesh: the relay
// attaches to the upstream's *consumer* side, subscribes (FrameSub on
// the otherwise-silent upstream direction of that link), and ingests
// whatever the upstream forwards exactly as if it were a local producer.
// One inbound copy of the stream per hop, however many subscribers sit
// below.
type Uplink struct {
	s    *Server
	conn net.Conn

	// static, when non-nil, is a fixed want-list sent once.  Nil means
	// auto mode: the uplink advertises the live union of what this
	// relay's own consumers (and downstream hops) want, re-sent whenever
	// it changes.
	static *transport.Subscription

	// addr labels the upstream in /debug/mesh: the address the caller
	// dialed (RunUplinkTo), or the connection's RemoteAddr fallback.
	addr string

	mu   sync.Mutex
	last string // canonical encoding last written upstream

	// peerMu guards the observability snapshot — the upstream identity
	// learned from its handshake reply and the last subscription sent —
	// separately from mu, which is held across connection writes: a
	// mesh scrape must never wait on a slow upstream socket.
	peerMu    sync.Mutex
	peerID    string
	peerMesh  string
	lastAll   bool
	lastNames []string

	kick chan struct{} // auto mode: union may have changed
	done chan struct{} // closed when RunUplink unwinds
}

// setPeer records the upstream's identity (its handshake reply).
func (u *Uplink) setPeer(id, meshAddr string) {
	u.peerMu.Lock()
	u.peerID, u.peerMesh = id, meshAddr
	u.peerMu.Unlock()
}

// info snapshots the uplink for /debug/mesh.
func (u *Uplink) info() MeshUplinkInfo {
	u.peerMu.Lock()
	defer u.peerMu.Unlock()
	return MeshUplinkInfo{
		Addr:     u.addr,
		NodeID:   u.peerID,
		MeshAddr: u.peerMesh,
		All:      u.lastAll,
		Names:    append([]string(nil), u.lastNames...),
	}
}

// RunUplink attaches this relay below an upstream relay reachable on
// conn (dialed to the upstream's consumer port).  static fixes the
// subscription; nil subscribes to the live downstream union, updated as
// consumers come, go, and re-subscribe.  It blocks, ingesting upstream
// frames, until conn fails, the upstream closes, or this relay is
// closed; the caller owns redial policy.
func (s *Server) RunUplink(conn net.Conn, static *transport.Subscription) error {
	addr := ""
	if ra := conn.RemoteAddr(); ra != nil {
		addr = ra.String()
	}
	return s.RunUplinkTo(conn, static, addr)
}

// RunUplinkTo is RunUplink with an explicit upstream address label for
// /debug/mesh.  Callers that dialed know the address they dialed, which
// is more useful to a mesh crawler than what RemoteAddr reports
// (in-process pipes, for one, report no address at all).
func (s *Server) RunUplinkTo(conn net.Conn, static *transport.Subscription, addr string) error {
	u := &Uplink{
		s:      s,
		conn:   conn,
		static: static,
		addr:   addr,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return fmt.Errorf("relay: uplink on closed relay")
	}
	s.uplinks[u] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.uplinks, u)
		s.mu.Unlock()
		close(u.done)
		conn.Close()
	}()

	// First subscription goes out before any ingest: until the upstream
	// applies it we are an all-subscriber there (the late-join default),
	// which errs toward receiving too much, never too little.
	initial := s.downstreamUnion()
	if static != nil {
		initial = *static
	}
	if err := u.send(initial); err != nil {
		return fmt.Errorf("relay: uplink subscribe: %w", err)
	}
	s.flight.Load().Emit(flightrec.KindUplinkAttach, addr, 0, 0, 0)
	if static == nil {
		go u.updater()
	}

	// The upstream is just a producer from here down — renumbered meta,
	// verbatim or re-batched data, trace spans per hop — plus the
	// identity reply of the mesh handshake.
	s.serveProducerFrom(conn, u)
	return nil
}

// Uplinks returns the number of active uplink connections.
func (s *Server) Uplinks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.uplinks)
}

// updater re-derives the downstream union on every kick and re-sends it
// upstream when it changed.  Exits when RunUplink unwinds.
func (u *Uplink) updater() {
	for {
		select {
		case <-u.done:
			return
		case <-u.kick:
		}
		// Send failures are left to the ingest loop to observe: if the
		// connection is broken, serveProducer's read fails and RunUplink
		// unwinds — reporting it twice helps nobody.
		u.send(u.s.downstreamUnion())
	}
}

// send writes a subscription upstream unless its canonical encoding
// matches the last one sent.  Serialized by u.mu so the updater and the
// initial send never interleave frame bytes.  Every subscription doubles
// as the mesh identity handshake: this relay's node identity is stamped
// on it, so the upstream learns who attached (and replies with its own).
func (u *Uplink) send(sub transport.Subscription) error {
	sub.NodeID, sub.MeshAddr = u.s.nodeInfo()
	sub = sub.Canonical()
	enc, err := transport.EncodeSubscription(sub)
	if err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if string(enc) == u.last {
		return nil
	}
	//pbiovet:allow lockcheck — u.mu exists to serialize frame bytes on this connection; holding it across the write is the point, and the upstream peer never needs this lock to drain its side.
	if err := transport.WriteFrame(u.conn, transport.Frame{Kind: transport.FrameSub, Payload: enc}); err != nil {
		return err
	}
	u.last = string(enc)
	u.peerMu.Lock()
	u.lastAll = sub.All
	u.lastNames = append(u.lastNames[:0], sub.Names...)
	u.peerMu.Unlock()
	return nil
}
