package relay

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracectx"
	"repro/internal/transport"
	"repro/pbio"
)

// scrapeTrace exports a tracer through a real telemetry HTTP listener and
// reads its spans back via /debug/trace.json — the same path pbio-trace
// uses against live processes.
func scrapeTrace(t *testing.T, tr *tracectx.Tracer) []tracectx.Span {
	t.Helper()
	reg := telemetry.NewRegistry()
	tr.ExportMetrics(reg)
	ln, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	spans, err := tracectx.ReadChrome(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestTraceE2EThroughRelay drives one traced record sender -> relay ->
// receiver at sampling rate 1.0, scrapes all three hops' trace exports
// over HTTP, and checks the joined trace attributes the measured
// end-to-end latency to phases across all three processes.
func TestTraceE2EThroughRelay(t *testing.T) {
	relayTr := tracectx.New("pbio-relay", 1, 0)
	s, prodAddr, consAddr := startRelay(t)
	s.SetTracing(relayTr)

	sendTr := tracectx.New("sender", 1, 0)
	recvTr := tracectx.New("receiver", 1, 0)

	// Consumer first, so the data frame is a live broadcast.
	cconn, err := net.Dial("tcp", consAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cconn.Close()
	rctx, err := pbio.NewContext(pbio.WithArch("sparc-v9-64"), pbio.WithTracer(recvTr))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("sample",
		pbio.F("seq", pbio.Int), pbio.F("v", pbio.Double))
	if err != nil {
		t.Fatal(err)
	}
	cconn.SetReadDeadline(time.Now().Add(10 * time.Second))
	reader := rctx.NewReader(cconn)

	pconn, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pconn.Close()
	sctx, err := pbio.NewContext(pbio.WithArch("x86-64"), pbio.WithTracer(sendTr))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := sctx.Register("sample",
		pbio.F("seq", pbio.Int), pbio.F("v", pbio.Double))
	if err != nil {
		t.Fatal(err)
	}
	w := sctx.NewWriter(pconn)
	rec := sf.NewRecord()
	rec.MustSetInt("seq", 0, 42)
	rec.MustSetFloat("v", 0, 0.5)

	t0 := time.Now()
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := reader.Read()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Decode(rf)
	if err != nil {
		t.Fatal(err)
	}
	e2e := time.Since(t0)
	if v, _ := got.Int("seq", 0); v != 42 {
		t.Fatalf("seq = %d through relay, want 42", v)
	}
	if id, ok := m.TraceID(); !ok || id == 0 {
		t.Fatal("message lost its trace context crossing the relay")
	}

	// The relay records its span after broadcast; give its goroutine a
	// moment before scraping.
	deadline := time.Now().Add(5 * time.Second)
	for relayTr.Collector().Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	traces := tracectx.Join(
		scrapeTrace(t, sendTr),
		scrapeTrace(t, relayTr),
		scrapeTrace(t, recvTr),
	)
	if len(traces) != 1 {
		t.Fatalf("joined %d traces, want 1", len(traces))
	}
	b := traces[0].Break()
	procs := make(map[string]bool, len(b.Procs))
	for _, p := range b.Procs {
		procs[p] = true
	}
	for _, want := range []string{"sender", "pbio-relay", "receiver"} {
		if !procs[want] {
			t.Fatalf("trace missing hop %q: procs %v", want, b.Procs)
		}
	}
	phases := make(map[string]bool)
	for _, s := range traces[0].Spans {
		phases[s.Name] = true
	}
	for _, want := range []string{
		tracectx.PhaseSend, tracectx.PhaseExtend, tracectx.PhaseFrame,
		tracectx.PhaseRelay, tracectx.PhaseWire, tracectx.PhaseConv,
	} {
		if !phases[want] {
			t.Fatalf("trace missing phase %q: %v", want, phases)
		}
	}
	// The phase union must account for the measured latency: nothing
	// beyond what the stopwatch saw (plus scheduling slack), and no
	// gaping unattributed hole.
	if b.Attributed > e2e+5*time.Millisecond {
		t.Fatalf("attributed %v exceeds measured e2e %v", b.Attributed, e2e)
	}
	if b.Attributed < e2e/2 {
		t.Fatalf("attributed %v covers under half of measured e2e %v", b.Attributed, e2e)
	}
	if b.E2E < b.Attributed {
		t.Fatalf("trace E2E %v < attributed %v", b.E2E, b.Attributed)
	}
}

// traceExchange pushes a pre-encoded producer byte stream through a live
// relay and reads records off a clean consumer link until the stream
// ends, returning how many records arrived and how many carried trace
// context.
func traceExchange(t *testing.T, s *Server, prodAddr, consAddr string, stream []byte, wrap func(net.Conn) net.Conn) (delivered, traced int) {
	t.Helper()
	cconn, err := net.Dial("tcp", consAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cconn.Close()
	rctx, err := pbio.NewContext(pbio.WithArch("x86"),
		pbio.WithTracer(tracectx.New("receiver", 1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("sample",
		pbio.F("seq", pbio.Int), pbio.F("v", pbio.Double))
	if err != nil {
		t.Fatal(err)
	}
	reader := rctx.NewReader(cconn)
	reader.SetTimeout(2 * time.Second)

	pconn, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	link := net.Conn(pconn)
	if wrap != nil {
		link = wrap(pconn)
	}
	if _, err := link.Write(stream); err != nil {
		link.Close()
		t.Logf("producer write cut short: %v", err)
	} else {
		link.Close()
	}

	for {
		m, err := reader.Read()
		if err != nil {
			// Timeout after the drain, EOF, or consumer cut — all fine;
			// the accounting below decides pass/fail.
			return delivered, traced
		}
		if _, err := m.Decode(rf); err != nil {
			t.Fatalf("delivered record failed to decode: %v", err)
		}
		delivered++
		if id, ok := m.TraceID(); ok && id != 0 {
			traced++
		}
	}
}

// tracedStream encodes n traced, checksummed records and returns the raw
// producer bytes plus the sender's span count.
func tracedStream(t *testing.T, n int) ([]byte, *tracectx.Tracer) {
	t.Helper()
	tr := tracectx.New("sender", 1, 0)
	ctx, err := pbio.NewContext(pbio.WithArch("x86"), pbio.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.Register("sample",
		pbio.F("seq", pbio.Int), pbio.F("v", pbio.Double))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := ctx.NewWriter(&buf)
	w.EnableChecksums()
	rec := f.NewRecord()
	for i := 0; i < n; i++ {
		rec.MustSetInt("seq", 0, int64(i))
		rec.MustSetFloat("v", 0, float64(i)*0.5)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), tr
}

// TestTraceLostSpanAccounting corrupts exactly one data frame in a traced
// stream and checks the relay's books: the surviving records keep their
// trace context, the discarded frame is counted as a lost span, and the
// relay records one span per record it actually forwarded.
func TestTraceLostSpanAccounting(t *testing.T) {
	const records = 5
	stream, _ := tracedStream(t, records)

	// Re-frame the stream, flipping one payload byte in the third data
	// frame (frame 0 is meta).  The checksum covers the body, so the
	// relay must detect and discard exactly that record.
	var frames []transport.Frame
	br := bytes.NewReader(stream)
	var buf []byte
	for {
		f, nbuf, err := transport.ReadFrame(br, buf)
		buf = nbuf
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		f.Payload = append([]byte(nil), f.Payload...)
		frames = append(frames, f)
	}
	if len(frames) != records+1 {
		t.Fatalf("stream has %d frames, want meta + %d data", len(frames), records)
	}
	corrupted := 3
	frames[corrupted].Payload[len(frames[corrupted].Payload)/2] ^= 0x40
	var mangled bytes.Buffer
	for _, f := range frames {
		if err := transport.WriteFrame(&mangled, f); err != nil {
			t.Fatal(err)
		}
	}

	relayTr := tracectx.New("pbio-relay", 1, 0)
	s, prodAddr, consAddr := startRelay(t)
	s.SetChecksums(true)
	s.SetTracing(relayTr)

	delivered, traced := traceExchange(t, s, prodAddr, consAddr, mangled.Bytes(), nil)
	if delivered != records-1 {
		t.Fatalf("delivered %d records, want %d (one corrupted)", delivered, records-1)
	}
	if traced != delivered {
		t.Fatalf("only %d of %d delivered records kept trace context", traced, delivered)
	}
	if lost := relayTr.Lost(); lost != 1 {
		t.Fatalf("relay lost-span count = %d, want 1", lost)
	}
	spans := relayTr.Collector().Snapshot()
	if len(spans) != records-1 {
		t.Fatalf("relay recorded %d spans, want %d", len(spans), records-1)
	}
	for _, sp := range spans {
		if sp.Name != tracectx.PhaseRelay || sp.Trace == 0 {
			t.Fatalf("bad relay span: %+v", sp)
		}
	}
	st := s.Stats()
	if st.ChecksumFailures != 1 {
		t.Fatalf("relay checksum failures = %d, want 1 (stats %+v)", st.ChecksumFailures, st)
	}
}

// TestTraceSurvivesFaultnetCorruption replays a traced stream through
// faultnet's random corruption until the relay provably discards traced
// frames, asserting on every run that (a) each delivered record still
// carries trace context and (b) any shortfall between sent and forwarded
// records shows up in the lost-span or resync counters — never silently.
func TestTraceSurvivesFaultnetCorruption(t *testing.T) {
	const records = 30
	stream, _ := tracedStream(t, records)

	sawLost := false
	for seed := int64(1); seed <= 20 && !sawLost; seed++ {
		relayTr := tracectx.New("pbio-relay", 1, 0)
		s, prodAddr, consAddr := startRelay(t)
		s.SetChecksums(true)
		s.SetTracing(relayTr)

		profile := faultnet.Profile{CorruptProb: 0.002, Seed: seed}
		delivered, traced := traceExchange(t, s, prodAddr, consAddr, stream,
			func(c net.Conn) net.Conn { return faultnet.Wrap(c, profile) })

		if traced != delivered {
			t.Fatalf("seed %d: %d of %d delivered records lost trace context",
				seed, delivered, traced)
		}
		forwarded := relayTr.Collector().Len()
		lost := relayTr.Lost()
		st := s.Stats()
		if delivered > forwarded {
			t.Fatalf("seed %d: consumer got %d records but relay recorded %d spans",
				seed, delivered, forwarded)
		}
		if missing := int64(records) - int64(forwarded); missing > 0 {
			// Every record the relay did not forward must be visible in
			// the books: counted lost (detected corrupt frame of a traced
			// format), swallowed by a resync scan, or lost with the
			// producer connection itself.
			if lost == 0 && st.Resyncs == 0 && st.BadProducers == 0 {
				t.Fatalf("seed %d: %d records vanished with clean books (stats %+v)",
					seed, missing, st)
			}
		}
		if lost > 0 {
			sawLost = true
			t.Logf("seed %d: %d/%d delivered, %d lost spans, %d resyncs",
				seed, delivered, records, lost, st.Resyncs)
		}
		s.Close()
	}
	if !sawLost {
		t.Fatal("no seed in 1..20 produced a counted lost span; corruption probe ineffective")
	}
}
