package relay

import (
	"net"
	"testing"
	"time"

	"repro/pbio"
)

// startRelay runs a relay with producer and consumer listeners.
func startRelay(t *testing.T) (s *Server, prodAddr, consAddr string) {
	t.Helper()
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pln.Close()
		t.Skipf("no loopback listener: %v", err)
	}
	s = NewServer()
	go func() { _ = s.ServeProducers(pln) }()
	go func() { _ = s.ServeConsumers(cln) }()
	t.Cleanup(func() {
		pln.Close()
		cln.Close()
		s.Close()
	})
	return s, pln.Addr().String(), cln.Addr().String()
}

func producerCtx(t *testing.T, arch string) (*pbio.Context, *pbio.Format) {
	t.Helper()
	ctx, err := pbio.NewContext(pbio.WithArch(arch))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.Register("sample",
		pbio.F("seq", pbio.Int),
		pbio.F("v", pbio.Double),
		pbio.Array("tag", pbio.Char, 8),
	)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, f
}

// consume reads n records from the relay on the given architecture and
// returns the seq values seen.
func consume(t *testing.T, addr, arch string, n int) []int64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, err := pbio.NewContext(pbio.WithArch(arch))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.Register("sample",
		pbio.F("seq", pbio.Int),
		pbio.F("v", pbio.Double),
		pbio.Array("tag", pbio.Char, 8),
	)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	r := ctx.NewReader(conn)
	var seqs []int64
	for len(seqs) < n {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("after %d records: %v", len(seqs), err)
		}
		rec, err := m.Decode(f)
		if err != nil {
			t.Fatal(err)
		}
		seq, _ := rec.Int("seq", 0)
		if v, _ := rec.Float("v", 0); v != float64(seq)*0.5 {
			t.Fatalf("record %d: v = %v", seq, v)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func TestRelayFanOut(t *testing.T) {
	s, prodAddr, consAddr := startRelay(t)

	// Two consumers on different architectures subscribe first.
	results := make(chan []int64, 2)
	for _, arch := range []string{"x86", "alpha"} {
		arch := arch
		go func() { results <- consume(t, consAddr, arch, 5) }()
	}
	// Give the consumers a moment to register (frames are not replayed
	// to pre-registered consumers; they receive live broadcasts).
	time.Sleep(100 * time.Millisecond)

	// A sparc producer publishes 5 records.
	conn, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, f := producerCtx(t, "sparc-v8")
	w := ctx.NewWriter(conn)
	for i := 0; i < 5; i++ {
		rec := f.NewRecord()
		rec.MustSetInt("seq", 0, int64(i))
		rec.MustSetFloat("v", 0, float64(i)*0.5)
		rec.MustSetString("tag", "pub")
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()

	for i := 0; i < 2; i++ {
		seqs := <-results
		for j, seq := range seqs {
			if seq != int64(j) {
				t.Errorf("consumer %d: record %d has seq %d", i, j, seq)
			}
		}
	}
	if s.Formats() != 1 {
		t.Errorf("relay saw %d formats, want 1", s.Formats())
	}
	st := s.Stats()
	if st.Frames < 5 || st.ForwardedBytes == 0 {
		t.Errorf("stats: %d frames, %d bytes", st.Frames, st.ForwardedBytes)
	}
	if st.BadProducers != 0 || st.Resyncs != 0 {
		t.Errorf("clean run recorded errors: %+v", st)
	}
}

func TestRelayLateJoinerGetsMeta(t *testing.T) {
	srv, prodAddr, consAddr := startRelay(t)

	// Producer publishes BEFORE any consumer exists.
	conn, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, f := producerCtx(t, "sparc-v8")
	w := ctx.NewWriter(conn)
	rec := f.NewRecord()
	rec.MustSetInt("seq", 0, 100)
	rec.MustSetFloat("v", 0, 50)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}

	// Wait for the relay to have absorbed the format.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Formats() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("relay never saw the format")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A late joiner must receive the meta replay, then live records.
	done := make(chan []int64, 1)
	go func() { done <- consume(t, consAddr, "x86", 1) }()
	time.Sleep(100 * time.Millisecond)
	rec2 := f.NewRecord()
	rec2.MustSetInt("seq", 0, 101)
	rec2.MustSetFloat("v", 0, 50.5)
	if err := w.Write(rec2); err != nil {
		t.Fatal(err)
	}
	seqs := <-done
	if len(seqs) != 1 || seqs[0] != 101 {
		t.Errorf("late joiner saw %v", seqs)
	}
	conn.Close()
}

func TestRelayTwoProducersDistinctFormats(t *testing.T) {
	s, prodAddr, consAddr := startRelay(t)

	recv := make(chan string, 8)
	go func() {
		conn, err := net.Dial("tcp", consAddr)
		if err != nil {
			return
		}
		defer conn.Close()
		ctx, _ := pbio.NewContext(pbio.WithArch("x86"))
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		r := ctx.NewReader(conn)
		for i := 0; i < 4; i++ {
			m, err := r.Read()
			if err != nil {
				return
			}
			recv <- m.FormatName()
		}
	}()
	time.Sleep(100 * time.Millisecond)

	// Producer 1: sparc layout of "sample"; producer 2: a different
	// format entirely.
	c1, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	ctx1, f1 := producerCtx(t, "sparc-v8")
	w1 := ctx1.NewWriter(c1)

	c2, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx2, err := pbio.NewContext(pbio.WithArch("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ctx2.Register("other", pbio.F("x", pbio.LongLong))
	if err != nil {
		t.Fatal(err)
	}
	w2 := ctx2.NewWriter(c2)

	for i := 0; i < 2; i++ {
		r1 := f1.NewRecord()
		r1.MustSetInt("seq", 0, int64(i))
		r1.MustSetFloat("v", 0, float64(i)*0.5)
		if err := w1.Write(r1); err != nil {
			t.Fatal(err)
		}
		r2 := f2.NewRecord()
		r2.MustSetInt("x", 0, int64(i))
		if err := w2.Write(r2); err != nil {
			t.Fatal(err)
		}
	}

	names := map[string]int{}
	for i := 0; i < 4; i++ {
		select {
		case n := <-recv:
			names[n]++
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d records (%v)", i, names)
		}
	}
	if names["sample"] != 2 || names["other"] != 2 {
		t.Errorf("received %v", names)
	}
	if s.Formats() != 2 {
		t.Errorf("relay saw %d formats, want 2", s.Formats())
	}
}
