package relay

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/transport"
)

// dataFrame builds a one-record data frame whose FormatID doubles as a
// sequence number, riding a refcounted payload so the test can audit
// reference balance.
func dataFrame(seq uint32) outFrame {
	p := &sharedPayload{buf: nil}
	p.refs.Store(1)
	return outFrame{
		f:      transport.Frame{Kind: transport.FrameData, FormatID: seq},
		owner:  p,
		recs:   1,
		traced: 1,
	}
}

func metaFrame(seq uint32) outFrame {
	return outFrame{f: transport.Frame{Kind: transport.FrameMeta, FormatID: seq}}
}

// TestQueueDropOldestProperty drives a small drop-oldest queue through a
// long randomized push/pop schedule and asserts the policy's contract:
//
//   - evictions happen oldest-first — the evicted sequence is strictly
//     increasing, so a newer record is never dropped before an older one;
//   - nothing vanishes — every pushed frame is either popped or evicted,
//     exactly once, and the queue's own drop counters match;
//   - meta frames are never evicted, whatever the pressure;
//   - every payload reference is balanced once the queue is drained.
func TestQueueDropOldestProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var evicted []uint32
	q := newFrameQueue(4, PolicyDropOldest, func(of outFrame) {
		evicted = append(evicted, of.f.FormatID)
	})

	const pushes = 5000
	var (
		owners    []*sharedPayload
		popped    []uint32
		metaSeqs  = map[uint32]bool{}
		poppedSet = map[uint32]bool{}
	)
	seq := uint32(0)
	doPop := func() {
		of, ok := q.pop()
		if !ok {
			t.Fatal("pop failed on an open queue with queued frames")
		}
		popped = append(popped, of.f.FormatID)
		of.owner.release()
	}
	for i := 0; i < pushes; i++ {
		var of outFrame
		if rng.Intn(16) == 0 {
			of = metaFrame(seq)
			metaSeqs[seq] = true
		} else {
			of = dataFrame(seq)
			owners = append(owners, of.owner)
		}
		seq++
		if res := q.push(of); res != pushOK {
			t.Fatalf("push %d: %v", i, res)
		}
		// Pop rarely, so the queue lives at capacity and evicts hard.
		if q.depth() > 0 && rng.Intn(4) == 0 {
			doPop()
		}
	}
	q.close()
	for {
		of, ok := q.pop()
		if !ok {
			break
		}
		popped = append(popped, of.f.FormatID)
		of.owner.release()
	}

	// Oldest-first: strictly increasing eviction order.
	for i := 1; i < len(evicted); i++ {
		if evicted[i] <= evicted[i-1] {
			t.Fatalf("eviction order regressed: %d after %d", evicted[i], evicted[i-1])
		}
	}
	// Conservation: popped and evicted partition the pushes.
	if len(popped)+len(evicted) != pushes {
		t.Fatalf("popped %d + evicted %d != pushed %d", len(popped), len(evicted), pushes)
	}
	for _, s := range popped {
		if poppedSet[s] {
			t.Fatalf("seq %d delivered twice", s)
		}
		poppedSet[s] = true
	}
	for _, s := range evicted {
		if poppedSet[s] {
			t.Fatalf("seq %d both popped and evicted", s)
		}
		if metaSeqs[s] {
			t.Fatalf("meta frame %d was evicted", s)
		}
	}
	// The queue's own books agree with the observer.
	frames, records := q.dropped()
	if frames != int64(len(evicted)) || records != int64(len(evicted)) {
		t.Fatalf("queue counted %d/%d dropped, observer saw %d", frames, records, len(evicted))
	}
	// Every meta frame survived to delivery.
	for s := range metaSeqs {
		if !poppedSet[s] {
			t.Fatalf("meta frame %d never delivered", s)
		}
	}
	// Reference balance: push took one ref per data frame; pops and
	// evictions released them all.
	for i, p := range owners {
		if n := p.refs.Load(); n != 0 {
			t.Fatalf("payload %d holds %d refs after drain", i, n)
		}
	}
}

// TestQueueMetaPreservedUnderMetaOnlyPressure: a queue holding nothing
// but meta grows rather than evicting or rejecting meta, and an
// incoming data frame that cannot evict anything older is itself the
// drop — counted, never silently lost.
func TestQueueMetaPreservedUnderMetaOnlyPressure(t *testing.T) {
	drops := 0
	q := newFrameQueue(2, PolicyDropOldest, func(outFrame) { drops++ })
	for i := uint32(0); i < 8; i++ {
		if res := q.push(metaFrame(i)); res != pushOK {
			t.Fatalf("meta push %d: %v", i, res)
		}
	}
	if q.depth() != 8 {
		t.Fatalf("depth %d after 8 meta pushes into cap-2 queue, want 8 (grown)", q.depth())
	}
	// The grown ring is now exactly full of meta.  A data push finds
	// nothing older than itself to evict, so it is the drop — and the
	// books say so.
	df := dataFrame(100)
	if res := q.push(df); res != pushOK {
		t.Fatalf("data push into meta-full queue: %v", res)
	}
	if drops != 1 {
		t.Fatalf("expected the incoming data frame dropped, drops = %d", drops)
	}
	if n := df.owner.refs.Load(); n != 0 {
		t.Fatalf("dropped data frame still holds %d refs", n)
	}
	if q.depth() != 8 {
		t.Fatalf("depth %d after rejected data push, want 8", q.depth())
	}
	// Once a pop frees a slot, data flows again.
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	}
	kept := dataFrame(101)
	if res := q.push(kept); res != pushOK {
		t.Fatalf("data push after pop: %v", res)
	}
	if drops != 1 {
		t.Fatalf("unexpected extra drop: %d", drops)
	}
	q.close()
	q.drain()
	if n := kept.owner.refs.Load(); n != 0 {
		t.Fatalf("drained frame holds %d refs", n)
	}
}

// TestQueueBlockPolicy: a full blocking queue parks the pusher until a
// pop frees a slot, and close() releases a parked pusher.
func TestQueueBlockPolicy(t *testing.T) {
	q := newFrameQueue(1, PolicyBlock, nil)
	if res := q.push(dataFrame(0)); res != pushOK {
		t.Fatalf("first push: %v", res)
	}
	done := make(chan pushResult, 1)
	go func() { done <- q.push(dataFrame(1)) }()
	select {
	case r := <-done:
		t.Fatalf("push into a full blocking queue returned %v immediately", r)
	case <-time.After(50 * time.Millisecond):
	}
	if of, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	} else {
		of.owner.release()
	}
	select {
	case r := <-done:
		if r != pushOK {
			t.Fatalf("unblocked push: %v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push never unblocked after pop")
	}

	// A parked pusher must also be released by close.
	go func() { done <- q.push(dataFrame(2)) }()
	time.Sleep(20 * time.Millisecond)
	q.close()
	select {
	case r := <-done:
		if r != pushClosed {
			t.Fatalf("push on closed queue: %v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push never unblocked after close")
	}
	q.drain()
}

// TestQueueDisconnectPolicy: overflow reports pushOverflow and releases
// the rejected frame's reference; queued frames are untouched.
func TestQueueDisconnectPolicy(t *testing.T) {
	q := newFrameQueue(2, PolicyDisconnect, nil)
	first, second, third := dataFrame(0), dataFrame(1), dataFrame(2)
	if q.push(first) != pushOK || q.push(second) != pushOK {
		t.Fatal("fills failed")
	}
	if res := q.push(third); res != pushOverflow {
		t.Fatalf("overflow push: %v, want pushOverflow", res)
	}
	if n := third.owner.refs.Load(); n != 0 {
		t.Fatalf("rejected frame holds %d refs", n)
	}
	if q.depth() != 2 {
		t.Fatalf("overflow disturbed the queue: depth %d", q.depth())
	}
	q.close()
	q.drain()
	if first.owner.refs.Load() != 0 || second.owner.refs.Load() != 0 {
		t.Fatal("drain did not release queued frames")
	}
	// Pushing after close reports pushClosed and releases.
	late := dataFrame(3)
	if res := q.push(late); res != pushClosed {
		t.Fatalf("post-close push: %v", res)
	}
	if n := late.owner.refs.Load(); n != 0 {
		t.Fatalf("post-close frame holds %d refs", n)
	}
}
