package relay

// Mesh-wide observability: node identity, per-format accounting, the
// stall detector, and the /debug/mesh JSON endpoint.
//
// PR 6 made relays compose into trees; this file makes the tree
// *visible*.  Every relay carries a stable node identity (SetNodeInfo)
// that rides the subscription handshake in both directions — an uplink
// announces its identity when it subscribes, the upstream replies with
// its own — so each hop knows who sits above and below it and a crawler
// (cmd/pbio-mon) can discover the whole tree starting from any hop.
//
// Accounting is per *format name*, the only identity that survives
// renumbering across hops: forwarded frames/records/bytes, current
// queue occupancy, and drop counters, all lock-free atomics resolved
// once at meta-registration time so the broadcast hot path stays within
// its zero-alloc budget.  Cardinality is bounded: past maxFormatStats
// distinct names, accounting collapses into one overflow bucket —
// a hostile producer can spam format names, but it cannot make the
// accounting (or anything scraping it) grow without bound.

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/flightrec"
)

// maxFormatStats bounds per-format accounting cardinality.  Formats past
// the bound share the overflow bucket.
const maxFormatStats = 1024

// overflowFormat names the shared bucket for formats past the bound.
// The leading underscore keeps it out of any real format's namespace
// (wire format names are application identifiers).
const overflowFormat = "_overflow"

// defaultStallWindow is the default stall-detector window (SetStallWindow).
const defaultStallWindow = 10 * time.Second

// formatStats is one format name's relay-side accounting.  All fields
// are atomics: the broadcast path and the consumer queues update them
// lock-free, the exporter and /debug/mesh read them at scrape time.
// Forward counters count each frame once, however many consumers it
// fans out to — the per-hop ingest measure a conservation check needs;
// bytes follow the ForwardedBytes convention (payload size × consumers
// enqueued).  A nil *formatStats (meta and control frames) no-ops.
type formatStats struct {
	name           string
	frames         atomic.Int64
	records        atomic.Int64
	bytes          atomic.Int64
	queued         atomic.Int64
	droppedFrames  atomic.Int64
	droppedRecords atomic.Int64
}

// noteForward counts one broadcast frame of this format.
func (fs *formatStats) noteForward(recs, payloadBytes, consumers int) {
	if fs == nil {
		return
	}
	fs.frames.Add(1)
	fs.records.Add(int64(recs))
	fs.bytes.Add(int64(payloadBytes) * int64(consumers))
}

// queueAdd moves the format's live queue occupancy by n frames.
func (fs *formatStats) queueAdd(n int64) {
	if fs != nil {
		fs.queued.Add(n)
	}
}

// noteDrop counts one evicted (or never-admitted) frame and its records.
func (fs *formatStats) noteDrop(recs int) {
	if fs == nil {
		return
	}
	fs.droppedFrames.Add(1)
	fs.droppedRecords.Add(int64(recs))
}

// statName returns the bucket's format name ("" for nil — meta and
// control frames have no bucket).
func (fs *formatStats) statName() string {
	if fs == nil {
		return ""
	}
	return fs.name
}

// fstatsForLocked returns the accounting bucket for a format name,
// creating it (and its labeled telemetry series, when telemetry is
// attached) on first use.  Callers hold s.mu.
func (s *Server) fstatsForLocked(name string) *formatStats {
	if fs, ok := s.fstats[name]; ok {
		return fs
	}
	if len(s.fstats) >= maxFormatStats {
		if s.fstatsOverflow == nil {
			s.fstatsOverflow = &formatStats{name: overflowFormat}
			s.registerFormatTelemetryLocked(s.fstatsOverflow)
		}
		return s.fstatsOverflow
	}
	fs := &formatStats{name: name}
	s.fstats[name] = fs
	s.registerFormatTelemetryLocked(fs)
	return fs
}

// registerFormatTelemetryLocked binds one format's accounting into the
// labeled export-time-read families (no-ops until SetTelemetry has
// created them; SetTelemetry back-fills formats seen earlier).  Callers
// hold s.mu.
func (s *Server) registerFormatTelemetryLocked(fs *formatStats) {
	name := fs.name // bounded: the fstats map is capped at maxFormatStats
	s.fvecs.frames.With(fs.frames.Load, name)
	s.fvecs.records.With(fs.records.Load, name)
	s.fvecs.bytes.With(fs.bytes.Load, name)
	s.fvecs.droppedFrames.With(fs.droppedFrames.Load, name)
	s.fvecs.droppedRecords.With(fs.droppedRecords.Load, name)
	s.fvecs.queued.With(fs.queued.Load, name)
}

// SetNodeInfo gives the relay its stable mesh identity: id names the
// node (hop) and meshAddr is the HTTP address where its observability
// surface — /debug/mesh in particular — is served.  Both ride the
// subscription handshake: uplinks announce them upstream, and the relay
// replies with its own to identity-bearing subscribers, which is what
// lets pbio-mon walk the tree in both directions from any hop.  Set it
// before attaching uplinks so the first handshake already carries it.
func (s *Server) SetNodeInfo(id, meshAddr string) {
	s.mu.Lock()
	s.nodeID = id
	s.meshAddr = meshAddr
	s.mu.Unlock()
}

// nodeInfo returns the relay's mesh identity.
func (s *Server) nodeInfo() (id, meshAddr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodeID, s.meshAddr
}

// SetStallWindow configures the stall detector: a consumer whose queue
// holds frames but has not drained one within the window is flagged as
// stalled (per-consumer in /debug/mesh, in aggregate on the
// pbio_relay_stalled_consumers gauge).  Zero disables detection; the
// default is 10s.
func (s *Server) SetStallWindow(d time.Duration) {
	s.mu.Lock()
	s.stallWindow = d
	s.mu.Unlock()
}

// queueStats walks the consumer set once, computing the queue-depth sum,
// the deepest queue, and the stalled-consumer count in a single pass —
// one lock acquisition per scrape, where the depth and max gauges used
// to take it twice.
func (s *Server) queueStats() (sum, maxDepth, stalled int64) {
	s.mu.Lock()
	consumers := make([]*consumer, 0, len(s.consumers))
	for c := range s.consumers {
		consumers = append(consumers, c)
	}
	window := s.stallWindow
	s.mu.Unlock()
	now := time.Now()
	for _, c := range consumers {
		st := c.q.state()
		d := int64(st.depth)
		sum += d
		if d > maxDepth {
			maxDepth = d
		}
		// Stall detection is edge-triggered into the flight journal:
		// the gauge says "stalled now", the journal says *when* it
		// began and cleared.  The CAS arbitrates racing scrapes so each
		// transition is journaled exactly once.
		if window > 0 && st.depth > 0 && now.Sub(st.lastDrain) > window {
			stalled++
			if c.stalled.CompareAndSwap(false, true) {
				s.flight.Load().Emit(flightrec.KindStallOnset, peerLabel(c.conn), 0, d, 0)
			}
		} else if c.stalled.CompareAndSwap(true, false) {
			s.flight.Load().Emit(flightrec.KindStallClear, peerLabel(c.conn), 0, d, 0)
		}
	}
	return sum, maxDepth, stalled
}

// StalledConsumers returns how many connected consumers the stall
// detector currently flags.
func (s *Server) StalledConsumers() int {
	_, _, stalled := s.queueStats()
	return int(stalled)
}

// MeshNodeInfo identifies one mesh node.
type MeshNodeInfo struct {
	ID       string `json:"id,omitempty"`
	MeshAddr string `json:"mesh_addr,omitempty"`
}

// MeshUplinkInfo is one uplink connection's state.
type MeshUplinkInfo struct {
	// Addr is the dial target of the uplink connection (the upstream's
	// consumer address); NodeID/MeshAddr are the upstream's announced
	// identity, learned from its handshake reply.
	Addr     string `json:"addr,omitempty"`
	NodeID   string `json:"node_id,omitempty"`
	MeshAddr string `json:"mesh_addr,omitempty"`
	// All / Names mirror the last subscription sent upstream.
	All   bool     `json:"all,omitempty"`
	Names []string `json:"names,omitempty"`
}

// MeshConsumerInfo is one consumer connection's state: its subscription,
// queue, drop accounting, and stall status.  NodeID/MeshAddr are set
// when the consumer announced itself as a downstream relay.
type MeshConsumerInfo struct {
	Remote         string   `json:"remote,omitempty"`
	NodeID         string   `json:"node_id,omitempty"`
	MeshAddr       string   `json:"mesh_addr,omitempty"`
	All            bool     `json:"all"`
	Names          []string `json:"names,omitempty"`
	QueueDepth     int      `json:"queue_depth"`
	QueueCap       int      `json:"queue_cap"`
	Policy         string   `json:"policy"`
	DroppedFrames  int64    `json:"dropped_frames"`
	DroppedRecords int64    `json:"dropped_records"`
	// LastDrainMS is how long ago the queue last handed a frame to the
	// consumer pump, in milliseconds (0 when it just drained).
	LastDrainMS int64 `json:"last_drain_ms"`
	Stalled     bool  `json:"stalled"`
}

// MeshFormatInfo is one format name's accounting at this hop.
type MeshFormatInfo struct {
	Name           string `json:"name"`
	Frames         int64  `json:"frames"`
	Records        int64  `json:"records"`
	Bytes          int64  `json:"bytes"`
	Queued         int64  `json:"queued"`
	DroppedFrames  int64  `json:"dropped_frames"`
	DroppedRecords int64  `json:"dropped_records"`
}

// MeshInfo is the /debug/mesh document: everything a crawler needs to
// place this hop in the tree and account for its traffic.
type MeshInfo struct {
	Node          MeshNodeInfo       `json:"node"`
	StallWindowMS int64              `json:"stall_window_ms"`
	Uplinks       []MeshUplinkInfo   `json:"uplinks,omitempty"`
	Consumers     []MeshConsumerInfo `json:"consumers,omitempty"`
	// Downstream lists the consumers that announced node identity —
	// the child relays a crawler should descend into.
	Downstream []MeshNodeInfo   `json:"downstream,omitempty"`
	Formats    []MeshFormatInfo `json:"formats,omitempty"`
	Stats      Stats            `json:"stats"`
	// Runtime, when the daemon wired a runtimebridge probe
	// (SetRuntimeProbe), summarizes the Go runtime under this hop —
	// GC-pause and scheduling-latency p99s, goroutine and heap gauges —
	// so a mesh crawl sees VM health without a second fetch per node.
	Runtime *MeshRuntimeInfo `json:"runtime,omitempty"`
}

// MeshRuntimeInfo is the runtime-health slice of /debug/mesh.
type MeshRuntimeInfo struct {
	Goroutines      int64 `json:"goroutines"`
	HeapBytes       int64 `json:"heap_bytes"`
	GCCycles        int64 `json:"gc_cycles"`
	GCPauseP99      int64 `json:"gc_pause_p99_nanos"`
	SchedLatencyP99 int64 `json:"sched_latency_p99_nanos"`
}

// SetRuntimeProbe attaches a runtime-health probe (normally a
// runtimebridge.Bridge snapshot adapter) whose result is embedded in
// every /debug/mesh document.
func (s *Server) SetRuntimeProbe(fn func() MeshRuntimeInfo) {
	s.mu.Lock()
	s.runtimeProbe = fn
	s.mu.Unlock()
}

// MeshSnapshot captures the relay's mesh-observability state.  Pointers
// are collected under the server lock, but per-queue and per-uplink
// state is read after releasing it, so a scrape never holds s.mu while
// touching another lock.
func (s *Server) MeshSnapshot() MeshInfo {
	type consumerRef struct {
		c        *consumer
		all      bool
		names    []string
		nodeID   string
		meshAddr string
	}
	s.mu.Lock()
	info := MeshInfo{
		Node:          MeshNodeInfo{ID: s.nodeID, MeshAddr: s.meshAddr},
		StallWindowMS: s.stallWindow.Milliseconds(),
	}
	window := s.stallWindow
	probe := s.runtimeProbe
	refs := make([]consumerRef, 0, len(s.consumers))
	for c := range s.consumers {
		refs = append(refs, consumerRef{
			c:        c,
			all:      c.all,
			names:    append([]string(nil), c.sub.Names...),
			nodeID:   c.peerNodeID,
			meshAddr: c.peerMeshAddr,
		})
	}
	uplinks := make([]*Uplink, 0, len(s.uplinks))
	for u := range s.uplinks {
		uplinks = append(uplinks, u)
	}
	fstats := make([]*formatStats, 0, len(s.fstats)+1)
	for _, fs := range s.fstats {
		fstats = append(fstats, fs)
	}
	if s.fstatsOverflow != nil {
		fstats = append(fstats, s.fstatsOverflow)
	}
	s.mu.Unlock()

	now := time.Now()
	for _, ref := range refs {
		st := ref.c.q.state()
		ci := MeshConsumerInfo{
			NodeID:         ref.nodeID,
			MeshAddr:       ref.meshAddr,
			All:            ref.all,
			Names:          ref.names,
			QueueDepth:     st.depth,
			QueueCap:       st.capacity,
			Policy:         st.policy.String(),
			DroppedFrames:  st.droppedFrames,
			DroppedRecords: st.droppedRecords,
			LastDrainMS:    now.Sub(st.lastDrain).Milliseconds(),
			Stalled:        window > 0 && st.depth > 0 && now.Sub(st.lastDrain) > window,
		}
		if addr := ref.c.conn.RemoteAddr(); addr != nil {
			ci.Remote = addr.String()
		}
		info.Consumers = append(info.Consumers, ci)
		if ref.nodeID != "" || ref.meshAddr != "" {
			info.Downstream = append(info.Downstream, MeshNodeInfo{ID: ref.nodeID, MeshAddr: ref.meshAddr})
		}
	}
	for _, u := range uplinks {
		info.Uplinks = append(info.Uplinks, u.info())
	}
	for _, fs := range fstats {
		info.Formats = append(info.Formats, MeshFormatInfo{
			Name:           fs.name,
			Frames:         fs.frames.Load(),
			Records:        fs.records.Load(),
			Bytes:          fs.bytes.Load(),
			Queued:         fs.queued.Load(),
			DroppedFrames:  fs.droppedFrames.Load(),
			DroppedRecords: fs.droppedRecords.Load(),
		})
	}
	sort.Slice(info.Formats, func(i, j int) bool { return info.Formats[i].Name < info.Formats[j].Name })
	sort.Slice(info.Consumers, func(i, j int) bool {
		a, b := info.Consumers[i], info.Consumers[j]
		if a.NodeID != b.NodeID {
			return a.NodeID < b.NodeID
		}
		return a.Remote < b.Remote
	})
	sort.Slice(info.Downstream, func(i, j int) bool { return info.Downstream[i].ID < info.Downstream[j].ID })
	info.Stats = s.Stats()
	if probe != nil {
		rt := probe()
		info.Runtime = &rt
	}
	return info
}

// MeshHandler returns the /debug/mesh endpoint: the MeshSnapshot as one
// JSON document.
func (s *Server) MeshHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.MeshSnapshot())
	})
}
