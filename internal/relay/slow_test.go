package relay

import (
	"net"
	"testing"
	"time"

	"repro/pbio"
)

// TestRelayDropsSlowConsumer: a consumer that never reads must be dropped
// once its queue fills, without stalling the producer or other consumers.
func TestRelayDropsSlowConsumer(t *testing.T) {
	_, prodAddr, consAddr := startRelay(t)

	// The stuck consumer connects and never reads.
	stuck, err := net.Dial("tcp", consAddr)
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer stuck.Close()

	// A healthy consumer keeps up.
	healthy := make(chan []int64, 1)
	go func() { healthy <- consume(t, consAddr, "x86", 4) }()
	time.Sleep(100 * time.Millisecond)

	conn, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, f := producerCtx(t, "sparc-v8")
	w := ctx.NewWriter(conn)

	// Publish far beyond the per-consumer queue bound.  Records are
	// ~100 bytes; TCP buffering absorbs a few hundred for the stuck
	// consumer, but the relay queue (256) overflows long before the
	// publish count does.
	total := consumerQueue * 8
	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			rec := f.NewRecord()
			rec.MustSetInt("seq", 0, int64(i%4))
			rec.MustSetFloat("v", 0, float64(i%4)*0.5)
			if err := w.Write(rec); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("producer: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("producer stalled behind a stuck consumer")
	}
	// The healthy consumer got its records despite the stuck peer.
	select {
	case seqs := <-healthy:
		if len(seqs) != 4 {
			t.Errorf("healthy consumer saw %d records", len(seqs))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("healthy consumer starved")
	}
}

// TestRelayConsumerAfterClose: consumers connecting to a closed relay are
// rejected cleanly.
func TestRelayConsumerAfterClose(t *testing.T) {
	s, _, consAddr := startRelay(t)
	s.Close()
	conn, err := net.Dial("tcp", consAddr)
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer conn.Close()
	ctx, err := pbio.NewContext(pbio.WithArch("x86"))
	if err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ctx.NewReader(conn).Read(); err == nil {
		t.Error("read from closed relay succeeded")
	}
}
