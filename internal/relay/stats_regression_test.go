package relay

import (
	"net"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// TestStatsCountsDisconnectDuringFlush is the regression test for the
// under-reporting bug: a consumer whose peer vanishes while the pump is
// mid-flush used to leave no trace in Stats — the relay only counted
// consumers *it* chose to drop.  Every departure must now land in
// exactly one counter: Disconnects for peers that left, DroppedConsumers
// for policy evictions.
func TestStatsCountsDisconnectDuringFlush(t *testing.T) {
	leakcheck.Check(t)
	s, prodAddr, consAddr := startRelay(t)

	conn, err := net.Dial("tcp", consAddr)
	if err != nil {
		t.Fatal(err)
	}

	// A producer keeps the stream busy so the pump is actively flushing
	// when the consumer goes away.
	pconn, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pconn.Close()
	ctx, f := producerCtx(t, "x86-64")
	w := ctx.NewWriter(pconn)
	stop := make(chan struct{})
	produced := make(chan struct{})
	go func() {
		defer close(produced)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec := f.NewRecord()
			rec.MustSetInt("seq", 0, int64(i))
			rec.MustSetFloat("v", 0, float64(i)*0.5)
			if err := w.Write(rec); err != nil {
				return
			}
			// Pace the stream well below queue-overflow rates: this test
			// is about the peer-gone path, not the eviction path.
			time.Sleep(200 * time.Microsecond)
		}
	}()
	defer func() { close(stop); <-produced }()

	// Receive a little — proof the pump is flushing to us — then vanish.
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("consumer never received a byte: %v", err)
	}
	conn.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Disconnects == 1 {
			if st.DroppedConsumers != 0 {
				t.Fatalf("departure double-counted: Disconnects=%d DroppedConsumers=%d",
					st.Disconnects, st.DroppedConsumers)
			}
			break
		}
		if st.Disconnects > 1 {
			t.Fatalf("one departure counted %d times", st.Disconnects)
		}
		if time.Now().After(deadline) {
			t.Fatalf("consumer departure never counted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The consumer count must agree with the accounting.
	deadline = time.Now().Add(10 * time.Second)
	for s.Consumers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dead consumer still registered: %d", s.Consumers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatsOverflowDropCountedOnce: an overflow eviction under the
// disconnect policy lands in DroppedConsumers exactly once, and the
// pump's own subsequent exit must not add a phantom Disconnect.
func TestStatsOverflowDropCountedOnce(t *testing.T) {
	leakcheck.Check(t)
	s, prodAddr, consAddr := startRelay(t)
	s.SetQueue(4, PolicyDisconnect)

	// A consumer that connects and never reads: its queue fills at the
	// 5th broadcast frame.
	conn, err := net.Dial("tcp", consAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	pconn, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pconn.Close()
	ctx, f := producerCtx(t, "x86-64")
	w := ctx.NewWriter(pconn)
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		rec := f.NewRecord()
		rec.MustSetInt("seq", 0, int64(i))
		rec.MustSetFloat("v", 0, float64(i)*0.5)
		if err := w.Write(rec); err != nil {
			t.Fatalf("producer write %d: %v", i, err)
		}
		if s.Stats().DroppedConsumers == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue overflow never dropped the consumer: %+v", s.Stats())
		}
	}

	// Give the pump time to unwind, then confirm no double count.
	deadline = time.Now().Add(10 * time.Second)
	for s.Consumers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dropped consumer still registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	st := s.Stats()
	if st.DroppedConsumers != 1 || st.Disconnects != 0 {
		t.Fatalf("overflow drop miscounted: DroppedConsumers=%d Disconnects=%d",
			st.DroppedConsumers, st.Disconnects)
	}
}
