// Package relay implements a PBIO stream broker in the spirit of the
// group's DataExchange system (the paper's reference [6]): producers
// publish record streams, consumers subscribe, and the relay fans every
// record out to all subscribers.
//
// The relay is where NDR's design pays off architecturally: because
// records travel in the sender's native layout with self-contained
// meta-information, the relay forwards *frames* — it never decodes,
// converts, or re-encodes a record, regardless of how many architectures
// are publishing.  A fixed-wire-format broker would at minimum re-frame,
// and an XML or object broker would re-serialize.
//
// What the relay must manage is format identity: producers assign their
// own small format IDs per connection, so the relay renumbers formats
// into a shared space (deduplicating identical layouts via the registry)
// and replays the relevant meta frames to late-joining consumers before
// their first data frame.
package relay

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abi"
	"repro/internal/bufpool"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracectx"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Server is a relay instance.
type Server struct {
	mu        sync.Mutex
	formats   *wire.Registry    // relay-wide format space
	metaBytes map[uint32][]byte // relay ID -> canonical meta frame payload
	metaOrder []uint32          // relay IDs in first-seen order (for replay)
	consumers map[*consumer]bool
	closed    bool

	// producerTimeout, when nonzero, bounds each producer frame read; an
	// idle-past-the-bound producer is treated as gone.  consumerTimeout
	// bounds each consumer frame write, so a peer that stops draining its
	// socket cannot pin a relay goroutine.
	producerTimeout time.Duration
	consumerTimeout time.Duration

	// sums, when true, checksums the frames the relay itself originates:
	// meta (broadcast and late-joiner replay) and re-batched data.  Data
	// frames it does not re-batch are forwarded verbatim, so their
	// integrity protection is whatever the producer chose; relay-built
	// frames would otherwise be the unprotected links in an end-to-end
	// checksummed path.
	sums bool

	// rebatchMax, when positive, makes each producer goroutine coalesce
	// consecutive same-format data records into relay-originated batch
	// frames of up to this many payload bytes (see SetRebatching).
	rebatchMax int

	stats statCounters

	// trace, when set (SetTelemetry), receives relay trace events:
	// resyncs, dropped producers and consumers.  Atomic so telemetry can
	// be attached without synchronizing with serving goroutines.
	trace atomic.Pointer[telemetry.TraceRing]

	// tracer, when set (SetTracing), records one relay-phase span per
	// forwarded frame that carries wire trace context.  The relay never
	// rewrites the frame — it reads the trailing trace field out of the
	// record bytes it is forwarding verbatim.
	tracer atomic.Pointer[tracectx.Tracer]
}

// emitTrace sends a relay trace event if telemetry is attached.
func (s *Server) emitTrace(name, detail string) {
	s.trace.Load().Emit("relay", name, detail)
}

// SetTracing makes the relay participate in cross-hop traces: for every
// forwarded data frame whose format carries the wire trace field, the
// relay records a relay-phase span (frame arrival → broadcast enqueue)
// under the message's trace ID.  Traced frames the relay has to discard
// (corruption, size mismatch) are counted on the tracer as lost, never
// silently dropped.  Nil tracers are ignored.
func (s *Server) SetTracing(t *tracectx.Tracer) {
	if t != nil {
		s.tracer.Store(t)
	}
}

// Stats is a snapshot of the relay's error-accounting and throughput
// counters.
type Stats struct {
	// Frames is the number of frames broadcast; ForwardedBytes the total
	// payload bytes forwarded (payload size × consumers at broadcast
	// time).
	Frames         int64
	ForwardedBytes int64

	// BadProducers counts producers dropped for protocol violations or
	// unrecoverable corruption; LastProducerError records the most
	// recent cause.
	BadProducers      int64
	LastProducerError string

	// DroppedConsumers counts consumers dropped for falling behind
	// (queue overflow) or exceeding the consumer write timeout.
	DroppedConsumers int64

	// Resyncs counts corrupt producer frames survived without dropping
	// the producer: the frame was skipped and the stream re-aligned on
	// the next frame boundary.
	Resyncs int64

	// ChecksumFailures counts producer frames whose CRC32-C prefix did
	// not match the body (a subset of the corrupt frames Resyncs
	// survives: checksummed frames are consumed whole, so they are
	// skipped without a boundary scan).
	ChecksumFailures int64

	// MetaReplays counts meta frames replayed to late-joining consumers.
	MetaReplays int64
}

// statCounters is the live form of Stats: lock-free atomics on the
// broadcast hot path, so Stats readers (the -stats ticker, the /metrics
// scrape) never contend with forwarding.  Only the error string needs a
// lock, and it is written on producer-drop paths only.
type statCounters struct {
	frames           atomic.Int64
	forwardedBytes   atomic.Int64
	badProducers     atomic.Int64
	droppedConsumers atomic.Int64
	resyncs          atomic.Int64
	checksumFailures atomic.Int64
	metaReplays      atomic.Int64

	errMu             sync.Mutex
	lastProducerError string
}

// sharedPayload is a pooled broadcast payload shared by every consumer
// queue a frame was enqueued to.  The broadcaster sets the reference
// count before the frame is visible to anyone; each consumer releases
// after writing (or when draining a closed queue), and the last
// reference returns the buffer to the pool.
type sharedPayload struct {
	refs atomic.Int32
	buf  []byte
}

// release drops one reference; the final release recycles the buffer.
// Nil receivers (un-pooled payloads, e.g. meta frames) are no-ops.
func (p *sharedPayload) release() {
	if p != nil && p.refs.Add(-1) == 0 {
		bufpool.Put(p.buf)
	}
}

// outFrame is one queued frame plus the pooled payload it rides on
// (owner nil when the payload is not pooled).
type outFrame struct {
	f     transport.Frame
	owner *sharedPayload
}

// consumer is one subscriber connection.
type consumer struct {
	ch   chan outFrame
	conn net.Conn
}

// consumerQueue bounds per-consumer buffering; a consumer that falls this
// far behind is dropped rather than stalling the producers.
const consumerQueue = 256

// crcTable is the transport's checksum polynomial (CRC32-C); the relay
// computes its own sums only for batch frames it originates.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxProducerResyncs bounds how many corrupt frames the relay will skip
// for one producer before concluding the connection is hopeless, and
// resyncScanLimit bounds how far it scans for the next frame boundary
// after each one.
const (
	maxProducerResyncs = 64
	resyncScanLimit    = 1 << 20
)

// NewServer returns an empty relay.
func NewServer() *Server {
	return &Server{
		formats:   wire.NewRegistry(),
		metaBytes: make(map[uint32][]byte),
		consumers: make(map[*consumer]bool),
	}
}

// SetTimeouts configures the per-frame producer read bound and consumer
// write bound.  Zero (the default) disables the respective deadline.
func (s *Server) SetTimeouts(producerRead, consumerWrite time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.producerTimeout = producerRead
	s.consumerTimeout = consumerWrite
}

// SetChecksums makes the relay checksum the frames it originates (meta,
// and batch frames built by re-batching).  Readers accept checksummed
// and plain frames transparently, so this is safe to enable regardless
// of what producers do.
func (s *Server) SetChecksums(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sums = on
}

// SetRebatching makes each producer goroutine coalesce consecutive
// same-format data records — singles and incoming batches alike — into
// relay-originated batch frames of up to maxBytes payload.  A pending
// batch is flushed when the producer's socket has no more buffered
// input (so coalescing adds no latency: records are held only while
// more are already waiting), when the format changes, when a non-data
// frame arrives, and when maxBytes is reached.  Re-batched frames are
// checksummed according to SetChecksums; the producer's own checksums
// are verified at ingest and stripped.  maxBytes ≤ 0 disables (the
// default), restoring verbatim forwarding.
func (s *Server) SetRebatching(maxBytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebatchMax = maxBytes
}

// metaFrame builds the meta frame for a relay format ID, checksummed when
// the relay is configured to.  Callers must hold s.mu.
func (s *Server) metaFrame(relayID uint32) transport.Frame {
	if s.sums {
		return transport.Frame{
			Kind:     transport.FrameMeta | transport.FrameFlagSum,
			FormatID: relayID,
			Payload:  transport.SumPayload(s.metaBytes[relayID]),
		}
	}
	return transport.Frame{
		Kind: transport.FrameMeta, FormatID: relayID, Payload: s.metaBytes[relayID],
	}
}

// ServeProducers accepts producer connections until the listener closes.
func (s *Server) ServeProducers(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveProducer(conn)
	}
}

// ServeConsumers accepts consumer connections until the listener closes.
// Each consumer is registered for broadcasts synchronously, before the
// next Accept: once the relay has accepted a consumer's connection, no
// subsequently broadcast frame can be missed.  (Frames broadcast while
// the connection is still in the listener backlog are still lost — a
// consumer that must not miss data has to connect before the producer
// starts, which this ordering makes sufficient in practice.)
func (s *Server) ServeConsumers(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		c, replay, wtimeout, ok := s.registerConsumer(conn)
		if !ok {
			continue
		}
		go s.pumpConsumer(c, replay, wtimeout)
	}
}

// serveProducer reads frames from one producer, renumbers format IDs into
// the relay space, and broadcasts.
//
// Corrupt frames do not immediately kill the producer: a frame that fails
// its checksum (or decodes to garbage) is skipped, and a framing-level
// error triggers a bounded scan for the next frame boundary (Resync).
// Only unrecoverable conditions — a gone peer, a protocol violation, or
// too many corrupt frames — drop the connection, and every drop records
// its cause in Stats.
func (s *Server) serveProducer(conn net.Conn) {
	defer conn.Close()
	type binding struct {
		relayID uint32
		size    int
		// Trace-field geometry of the format, resolved once at meta time
		// so per-frame trace extraction is two loads and a bounds check.
		traceOff int // -1: format carries no trace field
		order    abi.Endian
		name     string
	}
	local := make(map[uint32]binding) // producer's ID -> relay binding
	br := bufio.NewReader(conn)
	var buf []byte
	resyncs := 0

	s.mu.Lock()
	rebatchMax := s.rebatchMax
	sums := s.sums
	s.mu.Unlock()

	// skip records one survivable corrupt frame; the second return
	// reports whether the producer has exhausted its corruption budget.
	skip := func(cause error) bool {
		resyncs++
		s.noteResync()
		if resyncs > maxProducerResyncs {
			s.noteBadProducer(fmt.Errorf("relay: producer exceeded %d corrupt frames: %w", maxProducerResyncs, cause))
			return false
		}
		return true
	}

	// noteSpans records one relay-phase span per traced record in body —
	// a single record or a whole batch, the stride is the same.
	noteSpans := func(tr *tracectx.Tracer, b binding, body []byte, arrival time.Time) {
		if tr == nil || b.traceOff < 0 {
			return
		}
		for off := 0; off+b.size <= len(body); off += b.size {
			if tc, ok := wire.GetTraceContext(body[off:off+b.size], b.order, b.traceOff); ok && tc.TraceID != 0 {
				tr.Record(tracectx.Span{Trace: tc.TraceID, ID: tr.NewID(), Parent: tc.ParentSpan,
					Name: tracectx.PhaseRelay, Start: arrival, Dur: time.Since(arrival), Format: b.name})
			}
		}
	}

	// forward broadcasts verified record bytes verbatim on a pooled,
	// refcounted payload (the producer's read buffer is reused next
	// frame, so consumers need an owned copy — one copy shared by all).
	forward := func(kind byte, relayID uint32, payload []byte) {
		cp := bufpool.Get(len(payload))
		copy(cp, payload)
		s.broadcast(transport.Frame{Kind: kind, FormatID: relayID, Payload: cp},
			&sharedPayload{buf: cp})
	}

	// Re-batching state (SetRebatching): verified record bodies of one
	// format accumulate in rb — a pooled buffer with 4 bytes of checksum
	// headroom — and leave as one relay-originated batch frame.  Flush
	// policy: see SetRebatching.
	const sumPrefix = 4
	var (
		rb        []byte
		rbID      uint32
		rbRecords int
	)
	flushBatch := func() {
		if rbRecords == 0 {
			return
		}
		kind := byte(transport.FrameBatch)
		if rbRecords == 1 {
			kind = transport.FrameData
		}
		payload := rb[sumPrefix:]
		if sums {
			kind |= transport.FrameFlagSum
			wire.PutBeUint32(rb[:sumPrefix], crc32.Checksum(rb[sumPrefix:], crcTable))
			payload = rb
		}
		s.broadcast(transport.Frame{Kind: kind, FormatID: rbID, Payload: payload},
			&sharedPayload{buf: rb})
		rb, rbRecords = nil, 0
	}
	// Whatever is pending when the producer goes away — cleanly or not —
	// was received intact and still belongs to the consumers.
	defer flushBatch()

	appendRecords := func(b binding, body []byte) {
		if rbRecords > 0 && (b.relayID != rbID || len(rb)-sumPrefix+len(body) > rebatchMax) {
			flushBatch()
		}
		if rb == nil {
			// A producer batch may itself exceed rebatchMax; size for it so
			// append never reallocates away from the pooled buffer.
			rb = bufpool.Get(sumPrefix + max(rebatchMax, len(body)))[:sumPrefix]
		}
		if rbRecords == 0 {
			rbID = b.relayID
		}
		rb = append(rb, body...)
		rbRecords += len(body) / b.size
		if len(rb)-sumPrefix >= rebatchMax {
			flushBatch()
		}
	}

	for {
		// Coalescing must never hold records while the producer is
		// silent: flush the moment no further input is already buffered.
		if rbRecords > 0 && br.Buffered() == 0 {
			flushBatch()
		}
		s.armProducerRead(conn)
		f, nbuf, err := transport.ReadFrame(br, buf)
		buf = nbuf
		switch {
		case err == nil:
		case err == io.EOF:
			return // clean disconnect
		case errors.Is(err, transport.ErrCorruptFrame):
			// Framing lost: skip garbage until the next frame boundary.
			if !skip(err) {
				return
			}
			if _, rerr := transport.Resync(br, resyncScanLimit); rerr != nil {
				if rerr != io.EOF {
					s.noteBadProducer(fmt.Errorf("relay: resync failed: %w", rerr))
				}
				return
			}
			continue
		default:
			// Peer gone mid-frame (reset, timeout, truncation).
			s.noteBadProducer(err)
			return
		}
		tr := s.tracer.Load()
		var arrival time.Time
		if tr != nil {
			arrival = time.Now()
		}
		body, err := f.Body()
		if err != nil {
			// Checksum mismatch: the frame was consumed whole, so the
			// stream is still aligned — just drop the frame.
			s.noteChecksumFailure()
			if tr != nil {
				// A discarded frame of a trace-carrying format loses its
				// relay span (and likely the whole message); account for
				// it rather than letting the trace thin out silently.  A
				// discarded batch loses every record it carried — the
				// count is estimated from the advertised payload size,
				// since the body cannot be trusted.
				if b, ok := local[f.FormatID]; ok && b.traceOff >= 0 {
					switch f.BaseKind() {
					case transport.FrameData:
						tr.NoteLost()
					case transport.FrameBatch:
						tr.NoteLostN(max((len(f.Payload)-4)/b.size, 1))
					}
				}
			}
			if !skip(err) {
				return
			}
			continue
		}
		switch f.BaseKind() {
		case transport.FrameMeta:
			format, _, err := wire.DecodeMeta(body)
			if err != nil {
				if !skip(err) {
					return
				}
				continue
			}
			// Keep consumer frame order identical to arrival order: the
			// pending batch was received before this meta frame.
			flushBatch()
			relayID, added, err := s.registerFormat(format)
			if err != nil {
				s.noteBadProducer(err)
				return
			}
			local[f.FormatID] = binding{
				relayID:  relayID,
				size:     format.Size,
				traceOff: wire.TraceFieldOffset(format),
				order:    format.Order,
				name:     format.Name,
			}
			if added {
				s.broadcastMeta(relayID)
			}
		case transport.FrameData, transport.FrameBatch:
			b, ok := local[f.FormatID]
			if !ok {
				s.noteBadProducer(fmt.Errorf("relay: data frame for unknown format ID %d (data before meta)", f.FormatID))
				return
			}
			batch := f.BaseKind() == transport.FrameBatch
			if (!batch && len(body) != b.size) || (batch && (len(body) == 0 || len(body)%b.size != 0)) {
				// A record run that is not a positive multiple of its
				// format's size is corrupt even if its checksum matches
				// (or it carries none).
				if tr != nil && b.traceOff >= 0 {
					tr.NoteLostN(max(len(body)/b.size, 1))
				}
				if !skip(fmt.Errorf("relay: %d-byte payload, format is %d bytes/record", len(body), b.size)) {
					return
				}
				continue
			}
			if rebatchMax > 0 {
				// Coalesce: verified bodies (singles and batches alike)
				// accumulate and leave as relay-originated batch frames.
				appendRecords(b, body)
			} else {
				// Forward verbatim on a pooled shared payload.  The
				// payload keeps any checksum prefix — the checksum covers
				// the body only, so renumbering the header keeps it valid
				// end-to-end.
				forward(f.Kind, b.relayID, f.Payload)
			}
			noteSpans(tr, b, body, arrival)
		default:
			// Format-server references would need a resolver here;
			// producers must use in-band meta with a relay.
			s.noteBadProducer(fmt.Errorf("relay: unexpected frame kind %d from producer", f.Kind))
			return
		}
	}
}

// armProducerRead applies the producer read deadline, if configured.
func (s *Server) armProducerRead(conn net.Conn) {
	s.mu.Lock()
	d := s.producerTimeout
	s.mu.Unlock()
	if d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
}

func (s *Server) noteResync() {
	s.stats.resyncs.Add(1)
	s.emitTrace("resync", "")
}

func (s *Server) noteChecksumFailure() {
	s.stats.checksumFailures.Add(1)
	s.emitTrace("checksum_failure", "")
}

func (s *Server) noteBadProducer(cause error) {
	s.stats.badProducers.Add(1)
	s.stats.errMu.Lock()
	s.stats.lastProducerError = cause.Error()
	s.stats.errMu.Unlock()
	s.emitTrace("producer_dropped", cause.Error())
}

// registerFormat adds a format to the relay space, recording its meta
// frame for replay.
func (s *Server) registerFormat(f *wire.Format) (uint32, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, added, err := s.formats.Register(f)
	if err != nil {
		return 0, false, err
	}
	if added {
		s.metaBytes[id] = wire.EncodeMeta(f)
		s.metaOrder = append(s.metaOrder, id)
	}
	return id, added, nil
}

// broadcastMeta sends a newly-registered format's meta to current
// consumers (late joiners get it from the replay in pumpConsumer).
func (s *Server) broadcastMeta(relayID uint32) {
	s.mu.Lock()
	f := s.metaFrame(relayID)
	s.mu.Unlock()
	s.broadcast(f, nil)
}

// broadcast enqueues a frame for every consumer, dropping consumers whose
// queues are full.  owner, when non-nil, is the frame's pooled payload:
// broadcast takes one reference per successful enqueue plus one of its
// own (released before returning), so the buffer recycles exactly when
// the last consumer is done with it — including the zero-consumer case.
func (s *Server) broadcast(f transport.Frame, owner *sharedPayload) {
	if owner != nil {
		// The broadcaster's own reference keeps the count positive until
		// every enqueue attempt has resolved.
		owner.refs.Add(1)
	}
	s.mu.Lock()
	s.stats.frames.Add(1)
	s.stats.forwardedBytes.Add(int64(len(f.Payload)) * int64(len(s.consumers)))
	var drop []*consumer
	for c := range s.consumers {
		if owner != nil {
			owner.refs.Add(1)
		}
		select {
		case c.ch <- outFrame{f: f, owner: owner}:
		default:
			owner.release() // enqueue failed; give its reference back
			drop = append(drop, c)
		}
	}
	for _, c := range drop {
		// Closing the channel lets pumpConsumer flush what is already
		// queued and then disconnect; a peer that has stopped draining
		// its socket is bounded by the consumer write timeout instead.
		delete(s.consumers, c)
		close(c.ch)
		s.stats.droppedConsumers.Add(1)
		s.emitTrace("consumer_dropped", "queue overflow")
	}
	s.mu.Unlock()
	owner.release()
}

// registerConsumer snapshots the known formats and registers the
// connection for broadcasts atomically, so no meta or data frame is
// missed or duplicated.  It runs on the accept loop (see ServeConsumers
// for why); ok is false when the relay is closed.
func (s *Server) registerConsumer(conn net.Conn) (c *consumer, replay []transport.Frame, wtimeout time.Duration, ok bool) {
	c = &consumer{ch: make(chan outFrame, consumerQueue), conn: conn}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return nil, nil, 0, false
	}
	replay = make([]transport.Frame, 0, len(s.metaOrder))
	for _, id := range s.metaOrder {
		replay = append(replay, s.metaFrame(id))
	}
	s.stats.metaReplays.Add(int64(len(replay)))
	s.consumers[c] = true
	wtimeout = s.consumerTimeout
	s.mu.Unlock()
	return c, replay, wtimeout, true
}

// pumpConsumer replays known formats, then streams broadcast frames.
func (s *Server) pumpConsumer(c *consumer, replay []transport.Frame, wtimeout time.Duration) {
	conn := c.conn

	defer func() {
		s.mu.Lock()
		if s.consumers[c] {
			delete(s.consumers, c)
			close(c.ch)
		}
		s.mu.Unlock()
		conn.Close()
		// Drain so a concurrent broadcast never blocks on us, releasing
		// every queued frame's share of its pooled payload.
		for of := range c.ch {
			of.owner.release()
		}
	}()

	write := func(f transport.Frame) error {
		if wtimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(wtimeout))
		}
		return transport.WriteFrame(conn, f)
	}
	for _, f := range replay {
		if err := write(f); err != nil {
			return
		}
	}
	for of := range c.ch {
		err := write(of.f)
		of.owner.release()
		if err != nil {
			return
		}
	}
}

// Stats returns a snapshot of the relay's throughput and error-accounting
// counters.  Counters are atomics, so taking a snapshot never contends
// with the broadcast hot path.
func (s *Server) Stats() Stats {
	s.stats.errMu.Lock()
	lastErr := s.stats.lastProducerError
	s.stats.errMu.Unlock()
	return Stats{
		Frames:            s.stats.frames.Load(),
		ForwardedBytes:    s.stats.forwardedBytes.Load(),
		BadProducers:      s.stats.badProducers.Load(),
		LastProducerError: lastErr,
		DroppedConsumers:  s.stats.droppedConsumers.Load(),
		Resyncs:           s.stats.resyncs.Load(),
		ChecksumFailures:  s.stats.checksumFailures.Load(),
		MetaReplays:       s.stats.metaReplays.Load(),
	}
}

// Consumers returns the number of currently connected consumers.
func (s *Server) Consumers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.consumers)
}

// SetTelemetry exports the relay's counters on r as export-time-read
// metric functions — the live counters stay the single source of truth,
// nothing is double-counted — and routes relay trace events (resyncs,
// dropped peers) into r's trace ring.
func (s *Server) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	s.trace.Store(r.Trace())
	r.CounterFunc("pbio_relay_frames_total", "Frames broadcast to consumers.", s.stats.frames.Load)
	r.CounterFunc("pbio_relay_forwarded_bytes_total", "Payload bytes forwarded (payload size x consumers).", s.stats.forwardedBytes.Load)
	r.CounterFunc("pbio_relay_bad_producers_total", "Producers dropped for protocol violations or corruption.", s.stats.badProducers.Load)
	r.CounterFunc("pbio_relay_dropped_consumers_total", "Consumers dropped for falling behind or write timeout.", s.stats.droppedConsumers.Load)
	r.CounterFunc("pbio_relay_resyncs_total", "Corrupt producer frames survived by skip-and-resync.", s.stats.resyncs.Load)
	r.CounterFunc("pbio_relay_checksum_failures_total", "Producer frames whose CRC32-C did not match the body.", s.stats.checksumFailures.Load)
	r.CounterFunc("pbio_relay_meta_replays_total", "Meta frames replayed to late-joining consumers.", s.stats.metaReplays.Load)
	r.GaugeFunc("pbio_relay_formats", "Distinct formats the relay has seen.", func() int64 { return int64(s.Formats()) })
	r.GaugeFunc("pbio_relay_consumers", "Currently connected consumers.", func() int64 { return int64(s.Consumers()) })
}

// Formats returns the number of distinct formats the relay has seen.
func (s *Server) Formats() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.formats.Len()
}

// Close drops all consumers and refuses new ones.  Producer goroutines
// exit when their connections close (the caller closes the listeners).
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.consumers {
		delete(s.consumers, c)
		close(c.ch)
		// Unblock any pumpConsumer goroutine stuck mid-write so
		// shutdown never waits on a dead peer.
		c.conn.Close()
	}
}

// Serve runs both listeners and blocks until either fails.
func (s *Server) Serve(producers, consumers net.Listener) error {
	errc := make(chan error, 2)
	go func() { errc <- s.ServeProducers(producers) }()
	go func() { errc <- s.ServeConsumers(consumers) }()
	err := <-errc
	return fmt.Errorf("relay: %w", err)
}
