// Package relay implements a PBIO stream broker in the spirit of the
// group's DataExchange system (the paper's reference [6]): producers
// publish record streams, consumers subscribe, and the relay fans every
// record out to all subscribers.
//
// The relay is where NDR's design pays off architecturally: because
// records travel in the sender's native layout with self-contained
// meta-information, the relay forwards *frames* — it never decodes,
// converts, or re-encodes a record, regardless of how many architectures
// are publishing.  A fixed-wire-format broker would at minimum re-frame,
// and an XML or object broker would re-serialize.
//
// What the relay must manage is format identity: producers assign their
// own small format IDs per connection, so the relay renumbers formats
// into a shared space (deduplicating identical layouts via the registry)
// and replays the relevant meta frames to late-joining consumers before
// their first data frame.
package relay

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Server is a relay instance.
type Server struct {
	mu        sync.Mutex
	formats   *wire.Registry    // relay-wide format space
	metaBytes map[uint32][]byte // relay ID -> canonical meta frame payload
	metaOrder []uint32          // relay IDs in first-seen order (for replay)
	consumers map[*consumer]bool
	closed    bool

	// Stats, for tests and monitoring.
	producedFrames int
	forwardedBytes int
}

// consumer is one subscriber connection.
type consumer struct {
	ch   chan transport.Frame // payloads owned by the frame
	conn net.Conn
}

// consumerQueue bounds per-consumer buffering; a consumer that falls this
// far behind is dropped rather than stalling the producers.
const consumerQueue = 256

// NewServer returns an empty relay.
func NewServer() *Server {
	return &Server{
		formats:   wire.NewRegistry(),
		metaBytes: make(map[uint32][]byte),
		consumers: make(map[*consumer]bool),
	}
}

// ServeProducers accepts producer connections until the listener closes.
func (s *Server) ServeProducers(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveProducer(conn)
	}
}

// ServeConsumers accepts consumer connections until the listener closes.
func (s *Server) ServeConsumers(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveConsumer(conn)
	}
}

// serveProducer reads frames from one producer, renumbers format IDs into
// the relay space, and broadcasts.
func (s *Server) serveProducer(conn net.Conn) {
	defer conn.Close()
	local := make(map[uint32]uint32) // producer's ID -> relay ID
	var buf []byte
	for {
		f, nbuf, err := transport.ReadFrame(conn, buf)
		buf = nbuf
		if err != nil {
			return // EOF or protocol error: drop the producer
		}
		switch f.Kind {
		case transport.FrameMeta:
			format, _, err := wire.DecodeMeta(f.Payload)
			if err != nil {
				return
			}
			relayID, added, err := s.registerFormat(format)
			if err != nil {
				return
			}
			local[f.FormatID] = relayID
			if added {
				s.broadcastMeta(relayID)
			}
		case transport.FrameData:
			relayID, ok := local[f.FormatID]
			if !ok {
				return // data before meta: protocol violation
			}
			// The read buffer is reused per frame; broadcast an owned
			// copy shared by all consumers.
			payload := append([]byte(nil), f.Payload...)
			s.broadcast(transport.Frame{
				Kind: transport.FrameData, FormatID: relayID, Payload: payload,
			})
		default:
			// Format-server references would need a resolver here;
			// producers must use in-band meta with a relay.
			return
		}
	}
}

// registerFormat adds a format to the relay space, recording its meta
// frame for replay.
func (s *Server) registerFormat(f *wire.Format) (uint32, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, added, err := s.formats.Register(f)
	if err != nil {
		return 0, false, err
	}
	if added {
		s.metaBytes[id] = wire.EncodeMeta(f)
		s.metaOrder = append(s.metaOrder, id)
	}
	return id, added, nil
}

// broadcastMeta sends a newly-registered format's meta to current
// consumers (late joiners get it from the replay in serveConsumer).
func (s *Server) broadcastMeta(relayID uint32) {
	s.mu.Lock()
	payload := s.metaBytes[relayID]
	s.mu.Unlock()
	s.broadcast(transport.Frame{
		Kind: transport.FrameMeta, FormatID: relayID, Payload: payload,
	})
}

// broadcast enqueues a frame for every consumer, dropping consumers whose
// queues are full.
func (s *Server) broadcast(f transport.Frame) {
	s.mu.Lock()
	s.producedFrames++
	s.forwardedBytes += len(f.Payload) * len(s.consumers)
	var drop []*consumer
	for c := range s.consumers {
		select {
		case c.ch <- f:
		default:
			drop = append(drop, c)
		}
	}
	for _, c := range drop {
		delete(s.consumers, c)
		close(c.ch)
	}
	s.mu.Unlock()
}

// serveConsumer replays known formats, then streams broadcast frames.
func (s *Server) serveConsumer(conn net.Conn) {
	c := &consumer{ch: make(chan transport.Frame, consumerQueue), conn: conn}

	// Snapshot known formats and register for new frames atomically, so
	// no meta or data frame is missed or duplicated.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	replay := make([]transport.Frame, 0, len(s.metaOrder))
	for _, id := range s.metaOrder {
		replay = append(replay, transport.Frame{
			Kind: transport.FrameMeta, FormatID: id, Payload: s.metaBytes[id],
		})
	}
	s.consumers[c] = true
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		if s.consumers[c] {
			delete(s.consumers, c)
			close(c.ch)
		}
		s.mu.Unlock()
		conn.Close()
		// Drain so a concurrent broadcast never blocks on us.
		for range c.ch {
		}
	}()

	for _, f := range replay {
		if err := transport.WriteFrame(conn, f); err != nil {
			return
		}
	}
	for f := range c.ch {
		if err := transport.WriteFrame(conn, f); err != nil {
			return
		}
	}
}

// Stats returns the number of frames broadcast and total payload bytes
// forwarded (payload size × consumers at broadcast time).
func (s *Server) Stats() (frames, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.producedFrames, s.forwardedBytes
}

// Formats returns the number of distinct formats the relay has seen.
func (s *Server) Formats() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.formats.Len()
}

// Close drops all consumers and refuses new ones.  Producer goroutines
// exit when their connections close (the caller closes the listeners).
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.consumers {
		delete(s.consumers, c)
		close(c.ch)
	}
}

// Serve runs both listeners and blocks until either fails.
func (s *Server) Serve(producers, consumers net.Listener) error {
	errc := make(chan error, 2)
	go func() { errc <- s.ServeProducers(producers) }()
	go func() { errc <- s.ServeConsumers(consumers) }()
	err := <-errc
	return fmt.Errorf("relay: %w", err)
}
