// Package relay implements a PBIO stream broker in the spirit of the
// group's DataExchange system (the paper's reference [6]): producers
// publish record streams, consumers subscribe, and the relay fans every
// record out to its subscribers.
//
// The relay is where NDR's design pays off architecturally: because
// records travel in the sender's native layout with self-contained
// meta-information, the relay forwards *frames* — it never decodes,
// converts, or re-encodes a record, regardless of how many architectures
// are publishing.  A fixed-wire-format broker would at minimum re-frame,
// and an XML or object broker would re-serialize.
//
// Beyond the flat fan-out of the paper's era, relays compose into a
// *mesh*: a relay attaches below another relay with RunUplink, ingesting
// the upstream's frames exactly as if it were a producer, so producers →
// root → leaf relays → consumers forms a fan-out tree in which each hop
// pays one inbound copy of the stream no matter how many subscribers sit
// below it.  Consumers (and downstream relays) subscribe by format name
// (transport.FrameSub); a hop only receives the formats someone below it
// wants.  Every consumer gets a bounded queue with a configurable
// overflow policy (SetQueue), so a slow subscriber costs at most its
// queue — never the stream.
//
// What the relay must manage is format identity: producers assign their
// own small format IDs per connection, so the relay renumbers formats
// into a shared space (deduplicating identical layouts via the registry)
// and replays the relevant meta frames to late-joining consumers before
// their first data frame.
package relay

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abi"
	"repro/internal/bufpool"
	"repro/internal/flightrec"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracectx"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Server is a relay instance.
type Server struct {
	mu        sync.Mutex
	formats   *wire.Registry      // relay-wide format space
	metaBytes map[uint32][]byte   // relay ID -> canonical meta frame payload
	metaOrder []uint32            // relay IDs in first-seen order (for replay)
	names     map[uint32]string   // relay ID -> format name (subscription routing)
	byName    map[string][]uint32 // format name -> relay IDs carrying it
	consumers map[*consumer]bool
	uplinks   map[*Uplink]bool
	closed    bool

	// queueCap and queuePolicy shape the per-consumer queue every
	// registration creates (SetQueue).
	queueCap    int
	queuePolicy QueuePolicy

	// producerTimeout, when nonzero, bounds each producer frame read; an
	// idle-past-the-bound producer is treated as gone.  consumerTimeout
	// bounds each consumer frame write, so a peer that stops draining its
	// socket cannot pin a relay goroutine.
	producerTimeout time.Duration
	consumerTimeout time.Duration

	// sums, when true, checksums the frames the relay itself originates:
	// meta (broadcast and late-joiner replay) and re-batched data.  Data
	// frames it does not re-batch are forwarded verbatim, so their
	// integrity protection is whatever the producer chose; relay-built
	// frames would otherwise be the unprotected links in an end-to-end
	// checksummed path.
	sums bool

	// rebatchMax, when positive, makes each producer goroutine coalesce
	// consecutive same-format data records into relay-originated batch
	// frames of up to this many payload bytes (see SetRebatching).
	rebatchMax int

	stats statCounters

	// Mesh identity and observability (see mesh.go): nodeID / meshAddr
	// are this relay's stable hop identity (SetNodeInfo), stallWindow
	// the stall-detector bound (SetStallWindow).  fstats is per-format
	// accounting keyed by format name — bounded at maxFormatStats, with
	// fstatsOverflow catching the excess — and fvecs the labeled
	// telemetry families the per-format atomics export through (their
	// nil-safe With makes registration a no-op until SetTelemetry).
	nodeID         string
	meshAddr       string
	stallWindow    time.Duration
	runtimeProbe   func() MeshRuntimeInfo // SetRuntimeProbe; nil = no runtime section
	fstats         map[string]*formatStats
	fstatsOverflow *formatStats
	fvecs          struct {
		frames         *telemetry.CounterFuncVec
		records        *telemetry.CounterFuncVec
		bytes          *telemetry.CounterFuncVec
		droppedFrames  *telemetry.CounterFuncVec
		droppedRecords *telemetry.CounterFuncVec
		queued         *telemetry.GaugeFuncVec
	}

	// scrapeMaxDepth / scrapeStalled carry the extra results of the
	// single queue walk the depth-sum gauge runs per scrape to the two
	// gauges exported after it (see SetTelemetry).
	scrapeMaxDepth atomic.Int64
	scrapeStalled  atomic.Int64

	// trace, when set (SetTelemetry), receives relay trace events:
	// resyncs, dropped producers and consumers.  Atomic so telemetry can
	// be attached without synchronizing with serving goroutines.
	trace atomic.Pointer[telemetry.TraceRing]

	// tracer, when set (SetTracing), records one relay-phase span per
	// forwarded frame that carries wire trace context.  The relay never
	// rewrites the frame — it reads the trailing trace field out of the
	// record bytes it is forwarding verbatim.
	tracer atomic.Pointer[tracectx.Tracer]

	// flight, when set (SetFlight), journals the relay's discrete
	// events: consumer join/leave, policy drops, queue evictions, stall
	// transitions, uplink attachment.  Atomic like trace/tracer; a nil
	// recorder is a valid no-op sink.
	flight atomic.Pointer[flightrec.Recorder]
}

// SetFlight attaches a flight recorder.  All emission sites are off the
// broadcast hot path (connection lifecycle, eviction callbacks, scrape
// walks), so recording costs nothing per forwarded frame.
func (s *Server) SetFlight(r *flightrec.Recorder) {
	if r != nil {
		s.flight.Store(r)
	}
}

// emitTrace sends a relay trace event if telemetry is attached.
func (s *Server) emitTrace(name, detail string) {
	s.trace.Load().Emit("relay", name, detail)
}

// SetTracing makes the relay participate in cross-hop traces: for every
// forwarded data frame whose format carries the wire trace field, the
// relay records a relay-phase span (frame arrival → broadcast enqueue)
// under the message's trace ID.  Traced frames the relay has to discard
// (corruption, size mismatch) — and traced records evicted from a
// consumer queue by the drop-oldest policy — are counted on the tracer
// as lost, never silently dropped.  Nil tracers are ignored.
func (s *Server) SetTracing(t *tracectx.Tracer) {
	if t != nil {
		s.tracer.Store(t)
	}
}

// Stats is a snapshot of the relay's error-accounting and throughput
// counters.
type Stats struct {
	// Frames is the number of frames broadcast; ForwardedBytes the total
	// payload bytes forwarded (payload size × subscribed consumers at
	// broadcast time).
	Frames         int64
	ForwardedBytes int64

	// BadProducers counts producers dropped for protocol violations or
	// unrecoverable corruption; LastProducerError records the most
	// recent cause.
	BadProducers      int64
	LastProducerError string

	// DroppedConsumers counts consumers the relay itself evicted: queue
	// overflow under PolicyDisconnect.  Disconnects counts consumers
	// that left for any other reason the relay observed — peer gone,
	// write failure, write timeout — including mid-flush departures.
	// Together they account for every consumer departure except server
	// shutdown, each exactly once.
	DroppedConsumers int64
	Disconnects      int64

	// QueueDroppedFrames / QueueDroppedRecords count frames (and the
	// records they carried) evicted from consumer queues by
	// PolicyDropOldest.  Meta frames count as zero records.
	QueueDroppedFrames  int64
	QueueDroppedRecords int64

	// SubscriptionUpdates counts subscription frames applied to
	// consumers (including downstream relays' want-list updates).
	SubscriptionUpdates int64

	// Resyncs counts corrupt producer frames survived without dropping
	// the producer: the frame was skipped and the stream re-aligned on
	// the next frame boundary.
	Resyncs int64

	// ChecksumFailures counts producer frames whose CRC32-C prefix did
	// not match the body (a subset of the corrupt frames Resyncs
	// survives: checksummed frames are consumed whole, so they are
	// skipped without a boundary scan).
	ChecksumFailures int64

	// MetaReplays counts meta frames replayed to late-joining consumers.
	MetaReplays int64
}

// statCounters is the live form of Stats: lock-free atomics on the
// broadcast hot path, so Stats readers (the -stats ticker, the /metrics
// scrape) never contend with forwarding.  Only the error string needs a
// lock, and it is written on producer-drop paths only.
type statCounters struct {
	frames           atomic.Int64
	forwardedBytes   atomic.Int64
	badProducers     atomic.Int64
	droppedConsumers atomic.Int64
	disconnects      atomic.Int64
	droppedFrames    atomic.Int64
	droppedRecords   atomic.Int64
	subUpdates       atomic.Int64
	resyncs          atomic.Int64
	checksumFailures atomic.Int64
	metaReplays      atomic.Int64

	errMu             sync.Mutex
	lastProducerError string
}

// sharedPayload is a pooled broadcast payload shared by every consumer
// queue a frame was enqueued to.  The broadcaster sets the reference
// count before the frame is visible to anyone; each consumer releases
// after writing (or when draining a closed queue), and the last
// reference returns the buffer to the pool.
type sharedPayload struct {
	refs atomic.Int32
	buf  []byte
}

// release drops one reference; the final release recycles the buffer.
// Nil receivers (un-pooled payloads, e.g. meta frames) are no-ops.
func (p *sharedPayload) release() {
	if p != nil && p.refs.Add(-1) == 0 {
		bufpool.Put(p.buf)
	}
}

// outFrame is one queued frame plus the pooled payload it rides on
// (owner nil when the payload is not pooled), with the record counts the
// queue needs for exact drop accounting: recs is how many records the
// frame carries (0 for meta), traced how many of them carry live wire
// trace context.
type outFrame struct {
	f      transport.Frame
	owner  *sharedPayload
	recs   int
	traced int

	// fstats is the frame's format accounting bucket, resolved once at
	// meta-registration time (nil for meta and control frames).  Riding
	// the frame keeps queue-side accounting lock-ordering-free: the
	// queue updates it under its own mutex without ever needing
	// Server.mu to resolve a format name.
	fstats *formatStats
}

// consumer is one subscriber connection.
type consumer struct {
	q    *frameQueue
	conn net.Conn

	// Subscription state, guarded by Server.mu.  all is true until the
	// consumer sends an explicit want-list (plain consumers never do);
	// want is the resolved relay-ID set for a non-all subscription.
	sub  transport.Subscription
	all  bool
	want map[uint32]bool

	// Downstream identity, guarded by Server.mu: set when the consumer's
	// subscription announced it as a relay (mesh handshake).
	// identitySent records that this relay's own identity reply has been
	// queued, so re-subscriptions do not repeat it.
	peerNodeID   string
	peerMeshAddr string
	identitySent bool

	// counted guards the departure counters: exactly one of
	// DroppedConsumers / Disconnects per consumer, no matter how the
	// drop path races the pump's own exit.
	counted atomic.Bool

	// stalled is the stall detector's edge memory: set while the
	// consumer is flagged, CASed by racing scrape walks so each
	// onset/clear transition reaches the flight journal exactly once.
	stalled atomic.Bool
}

// wantsLocked reports whether the consumer's subscription covers a relay
// format ID.  Callers hold Server.mu.
func (c *consumer) wantsLocked(id uint32) bool { return c.all || c.want[id] }

// consumerQueue is the default per-consumer queue bound (SetQueue).
const consumerQueue = 256

// crcTable is the transport's checksum polynomial (CRC32-C); the relay
// computes its own sums only for batch frames it originates.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxProducerResyncs bounds how many corrupt frames the relay will skip
// for one producer before concluding the connection is hopeless, and
// resyncScanLimit bounds how far it scans for the next frame boundary
// after each one.
const (
	maxProducerResyncs = 64
	resyncScanLimit    = 1 << 20
)

// NewServer returns an empty relay.
func NewServer() *Server {
	return &Server{
		formats:     wire.NewRegistry(),
		metaBytes:   make(map[uint32][]byte),
		names:       make(map[uint32]string),
		byName:      make(map[string][]uint32),
		consumers:   make(map[*consumer]bool),
		uplinks:     make(map[*Uplink]bool),
		fstats:      make(map[string]*formatStats),
		queueCap:    consumerQueue,
		queuePolicy: PolicyDisconnect,
		stallWindow: defaultStallWindow,
	}
}

// SetTimeouts configures the per-frame producer read bound and consumer
// write bound.  Zero (the default) disables the respective deadline.
func (s *Server) SetTimeouts(producerRead, consumerWrite time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.producerTimeout = producerRead
	s.consumerTimeout = consumerWrite
}

// SetQueue configures the per-consumer queue: capacity in frames and the
// policy applied when a queue is full (block, drop-oldest, disconnect).
// Defaults: 256 frames, PolicyDisconnect.  Like the other knobs it is
// meant to be set before serving; consumers registered earlier keep the
// queue they were created with.
func (s *Server) SetQueue(capacity int, policy QueuePolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if capacity > 0 {
		s.queueCap = capacity
	}
	s.queuePolicy = policy
}

// SetChecksums makes the relay checksum the frames it originates (meta,
// and batch frames built by re-batching).  Readers accept checksummed
// and plain frames transparently, so this is safe to enable regardless
// of what producers do.
func (s *Server) SetChecksums(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sums = on
}

// SetRebatching makes each producer goroutine coalesce consecutive
// same-format data records — singles and incoming batches alike — into
// relay-originated batch frames of up to maxBytes payload.  A pending
// batch is flushed when the producer's socket has no more buffered
// input (so coalescing adds no latency: records are held only while
// more are already waiting), when the format changes, when a non-data
// frame arrives, and when maxBytes is reached.  Re-batched frames are
// checksummed according to SetChecksums; the producer's own checksums
// are verified at ingest and stripped.  maxBytes ≤ 0 disables (the
// default), restoring verbatim forwarding.
func (s *Server) SetRebatching(maxBytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebatchMax = maxBytes
}

// metaFrame builds the meta frame for a relay format ID, checksummed when
// the relay is configured to.  Callers must hold s.mu.
func (s *Server) metaFrame(relayID uint32) transport.Frame {
	if s.sums {
		return transport.Frame{
			Kind:     transport.FrameMeta | transport.FrameFlagSum,
			FormatID: relayID,
			Payload:  transport.SumPayload(s.metaBytes[relayID]),
		}
	}
	return transport.Frame{
		Kind: transport.FrameMeta, FormatID: relayID, Payload: s.metaBytes[relayID],
	}
}

// ServeProducers accepts producer connections until the listener closes.
func (s *Server) ServeProducers(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveProducer(conn)
	}
}

// AddProducerConn ingests frames arriving on conn as one producer, in a
// background goroutine — the programmatic equivalent of a ServeProducers
// accept, for in-process harnesses (net.Pipe meshes) and tests.
func (s *Server) AddProducerConn(conn net.Conn) {
	go s.serveProducer(conn)
}

// ServeConsumers accepts consumer connections until the listener closes.
// Each consumer is registered for broadcasts synchronously, before the
// next Accept: once the relay has accepted a consumer's connection, no
// subsequently broadcast frame can be missed.  (Frames broadcast while
// the connection is still in the listener backlog are still lost — a
// consumer that must not miss data has to connect before the producer
// starts, which this ordering makes sufficient in practice.)
func (s *Server) ServeConsumers(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.AddConsumerConn(conn)
	}
}

// AddConsumerConn registers conn as a consumer — synchronously, so no
// frame broadcast after it returns can be missed — and starts its pump
// and control-frame reader.  It reports false when the relay is closed
// (the connection is closed in that case).  The programmatic equivalent
// of a ServeConsumers accept, for in-process harnesses and uplinks.
func (s *Server) AddConsumerConn(conn net.Conn) bool {
	c, replay, wtimeout, ok := s.registerConsumer(conn)
	if !ok {
		return false
	}
	go s.pumpConsumer(c, replay, wtimeout)
	go s.readConsumerControl(c)
	// A new consumer defaults to an all-subscription, which can widen
	// this hop's downstream union.
	s.notifyUplinks()
	return true
}

// serveProducer reads frames from one producer, renumbers format IDs into
// the relay space, and broadcasts.
//
// Corrupt frames do not immediately kill the producer: a frame that fails
// its checksum (or decodes to garbage) is skipped, and a framing-level
// error triggers a bounded scan for the next frame boundary (Resync).
// Only unrecoverable conditions — a gone peer, a protocol violation, or
// too many corrupt frames — drop the connection, and every drop records
// its cause in Stats.
func (s *Server) serveProducer(conn net.Conn) {
	s.serveProducerFrom(conn, nil)
}

// serveProducerFrom is serveProducer with the link's uplink, when the
// "producer" is really an upstream relay (RunUplink): the one behavioral
// difference is that subscription frames on the inbound direction are
// the upstream's identity reply rather than a protocol violation.
func (s *Server) serveProducerFrom(conn net.Conn, u *Uplink) {
	defer conn.Close()
	role := "producer"
	if u != nil {
		role = "uplink"
	}
	s.flight.Load().Emit(flightrec.KindConnOpen, role, 0, 0, 0)
	defer s.flight.Load().Emit(flightrec.KindConnClose, role, 0, 0, 0)
	type binding struct {
		relayID uint32
		size    int
		// Trace-field geometry of the format, resolved once at meta time
		// so per-frame trace extraction is two loads and a bounds check.
		traceOff int // -1: format carries no trace field
		order    abi.Endian
		name     string
		// Per-format accounting bucket, resolved once here so the data
		// path never looks it up again.
		fstats *formatStats
	}
	local := make(map[uint32]binding) // producer's ID -> relay binding
	br := bufio.NewReader(conn)
	var buf []byte
	resyncs := 0

	s.mu.Lock()
	rebatchMax := s.rebatchMax
	sums := s.sums
	s.mu.Unlock()

	// skip records one survivable corrupt frame; the second return
	// reports whether the producer has exhausted its corruption budget.
	skip := func(cause error) bool {
		resyncs++
		s.noteResync()
		if resyncs > maxProducerResyncs {
			s.noteBadProducer(fmt.Errorf("relay: producer exceeded %d corrupt frames: %w", maxProducerResyncs, cause))
			return false
		}
		return true
	}

	// countTraced returns how many records in body carry live trace
	// context — the count rides on the queued frame so drop-oldest
	// evictions can account for every traced record they lose.
	countTraced := func(tr *tracectx.Tracer, b binding, body []byte) int {
		if tr == nil || b.traceOff < 0 {
			return 0
		}
		n := 0
		for off := 0; off+b.size <= len(body); off += b.size {
			if tc, ok := wire.GetTraceContext(body[off:off+b.size], b.order, b.traceOff); ok && tc.TraceID != 0 {
				n++
			}
		}
		return n
	}

	// noteSpans records one relay-phase span per traced record in body —
	// a single record or a whole batch, the stride is the same.
	noteSpans := func(tr *tracectx.Tracer, b binding, body []byte, arrival time.Time) {
		if tr == nil || b.traceOff < 0 {
			return
		}
		for off := 0; off+b.size <= len(body); off += b.size {
			if tc, ok := wire.GetTraceContext(body[off:off+b.size], b.order, b.traceOff); ok && tc.TraceID != 0 {
				tr.Record(tracectx.Span{Trace: tc.TraceID, ID: tr.NewID(), Parent: tc.ParentSpan,
					Name: tracectx.PhaseRelay, Start: arrival, Dur: time.Since(arrival), Format: b.name})
			}
		}
	}

	// forward broadcasts verified record bytes verbatim on a pooled,
	// refcounted payload (the producer's read buffer is reused next
	// frame, so consumers need an owned copy — one copy shared by all).
	forward := func(kind byte, relayID uint32, payload []byte, recs, traced int, fs *formatStats) {
		cp := bufpool.Get(len(payload))
		copy(cp, payload)
		s.broadcast(transport.Frame{Kind: kind, FormatID: relayID, Payload: cp},
			&sharedPayload{buf: cp}, recs, traced, fs)
	}

	// Re-batching state (SetRebatching): verified record bodies of one
	// format accumulate in rb — a pooled buffer with 4 bytes of checksum
	// headroom — and leave as one relay-originated batch frame.  Flush
	// policy: see SetRebatching.
	const sumPrefix = 4
	var (
		rb        []byte
		rbID      uint32
		rbStats   *formatStats
		rbRecords int
		rbTraced  int
	)
	flushBatch := func() {
		if rbRecords == 0 {
			return
		}
		kind := byte(transport.FrameBatch)
		if rbRecords == 1 {
			kind = transport.FrameData
		}
		payload := rb[sumPrefix:]
		if sums {
			kind |= transport.FrameFlagSum
			wire.PutBeUint32(rb[:sumPrefix], crc32.Checksum(rb[sumPrefix:], crcTable))
			payload = rb
		}
		s.broadcast(transport.Frame{Kind: kind, FormatID: rbID, Payload: payload},
			&sharedPayload{buf: rb}, rbRecords, rbTraced, rbStats)
		rb, rbStats, rbRecords, rbTraced = nil, nil, 0, 0
	}
	// Whatever is pending when the producer goes away — cleanly or not —
	// was received intact and still belongs to the consumers.
	defer flushBatch()

	appendRecords := func(b binding, body []byte, traced int) {
		if rbRecords > 0 && (b.relayID != rbID || len(rb)-sumPrefix+len(body) > rebatchMax) {
			flushBatch()
		}
		if rb == nil {
			// A producer batch may itself exceed rebatchMax; size for it so
			// append never reallocates away from the pooled buffer.
			rb = bufpool.Get(sumPrefix + max(rebatchMax, len(body)))[:sumPrefix]
		}
		if rbRecords == 0 {
			rbID, rbStats = b.relayID, b.fstats
		}
		rb = append(rb, body...)
		rbRecords += len(body) / b.size
		rbTraced += traced
		if len(rb)-sumPrefix >= rebatchMax {
			flushBatch()
		}
	}

	for {
		// Coalescing must never hold records while the producer is
		// silent: flush the moment no further input is already buffered.
		if rbRecords > 0 && br.Buffered() == 0 {
			flushBatch()
		}
		s.armProducerRead(conn)
		f, nbuf, err := transport.ReadFrame(br, buf)
		buf = nbuf
		switch {
		case err == nil:
		case err == io.EOF:
			return // clean disconnect
		case errors.Is(err, transport.ErrCorruptFrame):
			// Framing lost: skip garbage until the next frame boundary.
			if !skip(err) {
				return
			}
			if _, rerr := transport.Resync(br, resyncScanLimit); rerr != nil {
				if rerr != io.EOF {
					s.noteBadProducer(fmt.Errorf("relay: resync failed: %w", rerr))
				}
				return
			}
			continue
		default:
			// Peer gone mid-frame (reset, timeout, truncation).
			s.noteBadProducer(err)
			return
		}
		tr := s.tracer.Load()
		var arrival time.Time
		if tr != nil {
			arrival = time.Now()
		}
		body, err := f.Body()
		if err != nil {
			// Checksum mismatch: the frame was consumed whole, so the
			// stream is still aligned — just drop the frame.
			s.noteChecksumFailure()
			if tr != nil {
				// A discarded frame of a trace-carrying format loses its
				// relay span (and likely the whole message); account for
				// it rather than letting the trace thin out silently.  A
				// discarded batch loses every record it carried — the
				// count is estimated from the advertised payload size,
				// since the body cannot be trusted.
				if b, ok := local[f.FormatID]; ok && b.traceOff >= 0 {
					switch f.BaseKind() {
					case transport.FrameData:
						tr.NoteLost()
					case transport.FrameBatch:
						tr.NoteLostN(max((len(f.Payload)-4)/b.size, 1))
					}
				}
			}
			if !skip(err) {
				return
			}
			continue
		}
		switch f.BaseKind() {
		case transport.FrameMeta:
			format, _, err := wire.DecodeMeta(body)
			if err != nil {
				if !skip(err) {
					return
				}
				continue
			}
			// Keep consumer frame order identical to arrival order: the
			// pending batch was received before this meta frame.
			flushBatch()
			relayID, added, fs, err := s.registerFormat(format)
			if err != nil {
				s.noteBadProducer(err)
				return
			}
			local[f.FormatID] = binding{
				relayID:  relayID,
				size:     format.Size,
				traceOff: wire.TraceFieldOffset(format),
				order:    format.Order,
				name:     format.Name,
				fstats:   fs,
			}
			if added {
				s.broadcastMeta(relayID)
			}
		case transport.FrameData, transport.FrameBatch:
			b, ok := local[f.FormatID]
			if !ok {
				s.noteBadProducer(fmt.Errorf("relay: data frame for unknown format ID %d (data before meta)", f.FormatID))
				return
			}
			batch := f.BaseKind() == transport.FrameBatch
			if (!batch && len(body) != b.size) || (batch && (len(body) == 0 || len(body)%b.size != 0)) {
				// A record run that is not a positive multiple of its
				// format's size is corrupt even if its checksum matches
				// (or it carries none).
				if tr != nil && b.traceOff >= 0 {
					tr.NoteLostN(max(len(body)/b.size, 1))
				}
				if !skip(fmt.Errorf("relay: %d-byte payload, format is %d bytes/record", len(body), b.size)) {
					return
				}
				continue
			}
			traced := countTraced(tr, b, body)
			if rebatchMax > 0 {
				// Coalesce: verified bodies (singles and batches alike)
				// accumulate and leave as relay-originated batch frames.
				appendRecords(b, body, traced)
			} else {
				// Forward verbatim on a pooled shared payload.  The
				// payload keeps any checksum prefix — the checksum covers
				// the body only, so renumbering the header keeps it valid
				// end-to-end.
				forward(f.Kind, b.relayID, f.Payload, len(body)/b.size, traced, b.fstats)
			}
			noteSpans(tr, b, body, arrival)
		case transport.FrameSub:
			// On an uplink this is the upstream's identity reply (the
			// other half of the mesh handshake); on a plain producer
			// link FrameSub is a consumer-to-relay control frame and
			// just as much a protocol violation as any other kind.
			if u == nil {
				s.noteBadProducer(fmt.Errorf("relay: unexpected subscription frame from producer"))
				return
			}
			sub, err := transport.DecodeSubscription(body)
			if err != nil {
				if !skip(err) {
					return
				}
				continue
			}
			u.setPeer(sub.NodeID, sub.MeshAddr)
		default:
			// Format-server references would need a resolver here;
			// producers must use in-band meta with a relay.
			s.noteBadProducer(fmt.Errorf("relay: unexpected frame kind %d from producer", f.Kind))
			return
		}
	}
}

// armProducerRead applies the producer read deadline, if configured.
func (s *Server) armProducerRead(conn net.Conn) {
	s.mu.Lock()
	d := s.producerTimeout
	s.mu.Unlock()
	if d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
}

func (s *Server) noteResync() {
	s.stats.resyncs.Add(1)
	s.emitTrace("resync", "")
}

func (s *Server) noteChecksumFailure() {
	s.stats.checksumFailures.Add(1)
	s.emitTrace("checksum_failure", "")
}

func (s *Server) noteBadProducer(cause error) {
	s.stats.badProducers.Add(1)
	s.stats.errMu.Lock()
	s.stats.lastProducerError = cause.Error()
	s.stats.errMu.Unlock()
	s.emitTrace("producer_dropped", cause.Error())
}

// registerFormat adds a format to the relay space, recording its meta
// frame for replay and resolving which consumers' subscriptions cover
// the new ID.  It also returns the format's accounting bucket (shared
// by every relay ID carrying the name) for the caller's binding.
func (s *Server) registerFormat(f *wire.Format) (uint32, bool, *formatStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, added, err := s.formats.Register(f)
	if err != nil {
		return 0, false, nil, err
	}
	if added {
		s.metaBytes[id] = wire.EncodeMeta(f)
		s.metaOrder = append(s.metaOrder, id)
		s.names[id] = f.Name
		s.byName[f.Name] = append(s.byName[f.Name], id)
		// Subscriptions are by name; a just-learned ID may already be
		// wanted by consumers that subscribed before the format existed.
		for c := range s.consumers {
			if !c.all && c.sub.Matches(f.Name) {
				c.want[id] = true
			}
		}
	}
	return id, added, s.fstatsForLocked(f.Name), nil
}

// broadcastMeta sends a newly-registered format's meta to current
// consumers (late joiners get it from the replay in pumpConsumer).
func (s *Server) broadcastMeta(relayID uint32) {
	s.mu.Lock()
	f := s.metaFrame(relayID)
	s.mu.Unlock()
	s.broadcast(f, nil, 0, 0, nil)
}

// broadcast enqueues a frame for every consumer whose subscription
// covers it (meta frames go to everyone — format knowledge is cheap and
// a subscription can widen later).  owner, when non-nil, is the frame's
// pooled payload: broadcast takes one reference per enqueue attempt plus
// one of its own (released before returning), and the consumer queues
// release theirs however the frame leaves the queue, so the buffer
// recycles exactly when the last consumer is done with it — including
// the zero-consumer case.
//
// A full queue resolves by the consumer's policy: disconnect evicts the
// consumer (its queued frames still flush), drop-oldest evicts the
// oldest queued frame, block waits for space.  Blocking pushes happen
// outside the server lock, so one stalled consumer delays its producer's
// stream but never consumer registration, stats, or other control paths.
//
//pbio:hotpath noalloc=0 per-frame fan-out; the non-blocking path enqueues without allocating
func (s *Server) broadcast(f transport.Frame, owner *sharedPayload, recs, traced int, fstats *formatStats) {
	if owner != nil {
		// The broadcaster's own reference keeps the count positive until
		// every enqueue attempt has resolved.
		owner.refs.Add(1)
	}
	isData := f.BaseKind() == transport.FrameData || f.BaseKind() == transport.FrameBatch
	of := outFrame{f: f, owner: owner, recs: recs, traced: traced, fstats: fstats}

	s.mu.Lock()
	s.stats.frames.Add(1)
	if s.queuePolicy == PolicyBlock {
		// Snapshot the matched consumers and push outside the lock:
		// PolicyBlock pushes can wait indefinitely on a slow consumer,
		// and the lock must not wait with them.
		//pbio:alloc-ok PolicyBlock trades one snapshot slice per frame for never waiting under the server lock
		targets := make([]*consumer, 0, len(s.consumers))
		for c := range s.consumers {
			if isData && !c.wantsLocked(f.FormatID) {
				continue
			}
			targets = append(targets, c)
		}
		s.stats.forwardedBytes.Add(int64(len(f.Payload)) * int64(len(targets)))
		s.mu.Unlock()
		fstats.noteForward(recs, len(f.Payload), len(targets))
		var drop []*consumer
		for _, c := range targets {
			if owner != nil {
				owner.refs.Add(1)
			}
			if c.q.push(of) == pushOverflow {
				// Only possible if this consumer was registered under a
				// non-blocking policy before SetQueue changed it.
				//pbio:alloc-ok grows only when a consumer is being evicted, which ends its steady state anyway
				drop = append(drop, c)
			}
		}
		for _, c := range drop {
			s.removeConsumer(c, "queue overflow", true)
		}
		owner.release()
		return
	}
	// Non-blocking policies: push never waits, so the whole fan-out runs
	// under the lock with no per-broadcast allocation.
	sent := 0
	var drop []*consumer
	for c := range s.consumers {
		if isData && !c.wantsLocked(f.FormatID) {
			continue
		}
		sent++
		if owner != nil {
			owner.refs.Add(1)
		}
		if c.q.pushNoWait(of) == pushOverflow {
			//pbio:alloc-ok grows only when a consumer is being evicted, which ends its steady state anyway
			drop = append(drop, c)
		}
	}
	s.stats.forwardedBytes.Add(int64(len(f.Payload)) * int64(sent))
	fstats.noteForward(recs, len(f.Payload), sent)
	for _, c := range drop {
		delete(s.consumers, c)
		c.q.close()
		s.noteConsumerGone(c, true, "queue overflow")
	}
	s.mu.Unlock()
	if len(drop) > 0 {
		s.notifyUplinks()
	}
	owner.release()
}

// noteConsumerGone counts one consumer departure exactly once —
// policyDrop selects DroppedConsumers (the relay evicted it) versus
// Disconnects (the peer left or its writes failed).  Safe to call from
// racing paths; the consumer's counted flag arbitrates.
func (s *Server) noteConsumerGone(c *consumer, policyDrop bool, reason string) {
	if !c.counted.CompareAndSwap(false, true) {
		return
	}
	if policyDrop {
		s.stats.droppedConsumers.Add(1)
		s.emitTrace("consumer_dropped", reason)
		s.flight.Load().Emit(flightrec.KindPolicyDisconnect, reason, 0, 0, 0)
	} else {
		s.stats.disconnects.Add(1)
		s.emitTrace("consumer_disconnect", reason)
		s.flight.Load().Emit(flightrec.KindConsumerLeave, reason, 0, 0, 0)
	}
}

// removeConsumer unregisters c (if still registered) and closes its
// queue, counting the departure.  The pump keeps flushing whatever was
// queued before the close and then disconnects the socket.
func (s *Server) removeConsumer(c *consumer, reason string, policyDrop bool) {
	s.mu.Lock()
	registered := s.consumers[c]
	if registered {
		delete(s.consumers, c)
	}
	shuttingDown := s.closed
	s.mu.Unlock()
	c.q.close()
	if registered && !shuttingDown {
		s.noteConsumerGone(c, policyDrop, reason)
		s.notifyUplinks()
	}
}

// registerConsumer snapshots the known formats and registers the
// connection for broadcasts atomically, so no meta or data frame is
// missed or duplicated.  It runs on the accept loop (see ServeConsumers
// for why); ok is false when the relay is closed.
func (s *Server) registerConsumer(conn net.Conn) (c *consumer, replay []transport.Frame, wtimeout time.Duration, ok bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return nil, nil, 0, false
	}
	c = &consumer{conn: conn, all: true, sub: transport.Subscription{All: true}}
	c.q = newFrameQueue(s.queueCap, s.queuePolicy, func(of outFrame) {
		s.stats.droppedFrames.Add(1)
		s.stats.droppedRecords.Add(int64(of.recs))
		of.fstats.noteDrop(of.recs)
		if of.traced > 0 {
			s.tracer.Load().NoteLostN(of.traced)
		}
		// One journal event per evicted frame: arg1 carries the records
		// lost, arg2 the traced records among them, so a journal sums to
		// exactly the crawler's drop accounting.  Emit never blocks or
		// re-enters the queue, which the onEvict contract requires.
		s.flight.Load().Emit(flightrec.KindQueueEvict, of.fstats.statName(), 0, int64(of.recs), int64(of.traced))
	})
	replay = make([]transport.Frame, 0, len(s.metaOrder))
	for _, id := range s.metaOrder {
		replay = append(replay, s.metaFrame(id))
	}
	s.stats.metaReplays.Add(int64(len(replay)))
	s.consumers[c] = true
	n := len(s.consumers)
	wtimeout = s.consumerTimeout
	s.mu.Unlock()
	s.flight.Load().Emit(flightrec.KindConsumerJoin, peerLabel(conn), 0, int64(n), 0)
	return c, replay, wtimeout, true
}

// peerLabel names a connection's remote end for the flight journal.
func peerLabel(conn net.Conn) string {
	if addr := conn.RemoteAddr(); addr != nil {
		return addr.String()
	}
	return ""
}

// pumpConsumer replays known formats, then streams queued frames until
// the peer goes away or the queue is closed under it (policy drop or
// server shutdown) — in the latter case it still flushes everything
// queued before the close.
func (s *Server) pumpConsumer(c *consumer, replay []transport.Frame, wtimeout time.Duration) {
	conn := c.conn

	defer func() {
		s.removeConsumer(c, "peer gone", false)
		conn.Close()
		// Drain so a concurrent broadcast never blocks on us, releasing
		// every queued frame's share of its pooled payload.
		c.q.drain()
	}()

	write := func(f transport.Frame) error {
		if wtimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(wtimeout))
		}
		return transport.WriteFrame(conn, f)
	}
	for _, f := range replay {
		if err := write(f); err != nil {
			return
		}
	}
	for {
		of, ok := c.q.pop()
		if !ok {
			return
		}
		err := write(of.f)
		of.owner.release()
		if err != nil {
			return
		}
	}
}

// readConsumerControl reads the consumer's direction of the link —
// subscription frames — until the connection dies.  Consumers that never
// write (the pre-subscription protocol) keep the read blocked until the
// pump closes the socket, which is what bounds this goroutine's life.
func (s *Server) readConsumerControl(c *consumer) {
	br := bufio.NewReaderSize(c.conn, 512)
	var buf []byte
	defer func() { bufpool.Put(buf) }()
	for {
		f, nbuf, err := transport.ReadFrame(br, buf)
		buf = nbuf
		if err != nil {
			// EOF, peer gone, or garbage: either way the control channel
			// is over.  The data direction lives on until the pump fails.
			return
		}
		if f.BaseKind() != transport.FrameSub {
			continue // ignore unexpected-but-framed traffic
		}
		body, err := f.Body()
		if err != nil {
			continue // checksum mismatch: skip the frame, stay aligned
		}
		sub, err := transport.DecodeSubscription(body)
		if err != nil {
			continue
		}
		s.setSubscription(c, sub)
	}
}

// setSubscription applies a want-list to a consumer, resolving names to
// relay format IDs, and propagates the change to any auto-mode uplinks.
// A subscription carrying node identity marks the consumer as a
// downstream relay and triggers the other half of the mesh handshake:
// this relay's own identity, sent back once as a FrameSub riding the
// consumer's queue (so it never interleaves with a pump write).
func (s *Server) setSubscription(c *consumer, sub transport.Subscription) {
	sub = sub.Canonical()
	s.mu.Lock()
	if !s.consumers[c] {
		s.mu.Unlock()
		return
	}
	c.sub = sub
	c.all = sub.All
	if sub.All {
		c.want = nil
	} else {
		c.want = make(map[uint32]bool, len(sub.Names))
		for _, n := range sub.Names {
			for _, id := range s.byName[n] {
				c.want[id] = true
			}
		}
	}
	var reply *transport.Subscription
	if sub.NodeID != "" || sub.MeshAddr != "" {
		c.peerNodeID, c.peerMeshAddr = sub.NodeID, sub.MeshAddr
		if !c.identitySent && (s.nodeID != "" || s.meshAddr != "") {
			c.identitySent = true
			reply = &transport.Subscription{All: true, NodeID: s.nodeID, MeshAddr: s.meshAddr}
		}
	}
	s.stats.subUpdates.Add(1)
	s.mu.Unlock()
	if reply != nil {
		if enc, err := transport.EncodeSubscription(*reply); err == nil {
			// FrameSub is in the queue's never-evict class, so the reply
			// survives drop-oldest; if the queue is closed or overflows
			// the reply is simply lost along with the consumer.
			c.q.push(outFrame{f: transport.Frame{Kind: transport.FrameSub, Payload: enc}})
		}
	}
	s.emitTrace("subscription", "")
	s.notifyUplinks()
}

// SubscribedConsumers returns how many connected consumers have applied
// an explicit (non-all) subscription — the observable tests and callers
// poll to know a want-list has taken effect.
func (s *Server) SubscribedConsumers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for c := range s.consumers {
		if !c.all {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the relay's throughput and error-accounting
// counters.  Counters are atomics, so taking a snapshot never contends
// with the broadcast hot path.
func (s *Server) Stats() Stats {
	s.stats.errMu.Lock()
	lastErr := s.stats.lastProducerError
	s.stats.errMu.Unlock()
	return Stats{
		Frames:              s.stats.frames.Load(),
		ForwardedBytes:      s.stats.forwardedBytes.Load(),
		BadProducers:        s.stats.badProducers.Load(),
		LastProducerError:   lastErr,
		DroppedConsumers:    s.stats.droppedConsumers.Load(),
		Disconnects:         s.stats.disconnects.Load(),
		QueueDroppedFrames:  s.stats.droppedFrames.Load(),
		QueueDroppedRecords: s.stats.droppedRecords.Load(),
		SubscriptionUpdates: s.stats.subUpdates.Load(),
		Resyncs:             s.stats.resyncs.Load(),
		ChecksumFailures:    s.stats.checksumFailures.Load(),
		MetaReplays:         s.stats.metaReplays.Load(),
	}
}

// Consumers returns the number of currently connected consumers.
func (s *Server) Consumers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.consumers)
}

// SetTelemetry exports the relay's counters on r as export-time-read
// metric functions — the live counters stay the single source of truth,
// nothing is double-counted — and routes relay trace events (resyncs,
// dropped peers, subscription changes) into r's trace ring.
func (s *Server) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	s.trace.Store(r.Trace())
	r.CounterFunc("pbio_relay_frames_total", "Frames broadcast to consumers.", s.stats.frames.Load)
	r.CounterFunc("pbio_relay_forwarded_bytes_total", "Payload bytes forwarded (payload size x subscribed consumers).", s.stats.forwardedBytes.Load)
	r.CounterFunc("pbio_relay_bad_producers_total", "Producers dropped for protocol violations or corruption.", s.stats.badProducers.Load)
	r.CounterFunc("pbio_relay_dropped_consumers_total", "Consumers evicted for queue overflow (disconnect policy) or write timeout.", s.stats.droppedConsumers.Load)
	r.CounterFunc("pbio_relay_consumer_disconnects_total", "Consumers that departed on their own (peer gone, write failure).", s.stats.disconnects.Load)
	r.CounterFunc("pbio_relay_queue_dropped_frames_total", "Frames evicted from consumer queues by the drop-oldest policy.", s.stats.droppedFrames.Load)
	r.CounterFunc("pbio_relay_queue_dropped_records_total", "Records carried by frames evicted by the drop-oldest policy.", s.stats.droppedRecords.Load)
	r.CounterFunc("pbio_relay_subscription_updates_total", "Subscription want-lists applied to consumers.", s.stats.subUpdates.Load)
	r.CounterFunc("pbio_relay_resyncs_total", "Corrupt producer frames survived by skip-and-resync.", s.stats.resyncs.Load)
	r.CounterFunc("pbio_relay_checksum_failures_total", "Producer frames whose CRC32-C did not match the body.", s.stats.checksumFailures.Load)
	r.CounterFunc("pbio_relay_meta_replays_total", "Meta frames replayed to late-joining consumers.", s.stats.metaReplays.Load)
	r.GaugeFunc("pbio_relay_formats", "Distinct formats the relay has seen.", func() int64 { return int64(s.Formats()) })
	r.GaugeFunc("pbio_relay_consumers", "Currently connected consumers.", func() int64 { return int64(s.Consumers()) })
	r.GaugeFunc("pbio_relay_subscribed_consumers", "Consumers with an explicit (non-all) subscription.", func() int64 { return int64(s.SubscribedConsumers()) })
	// One queue walk serves all three queue gauges: families export in
	// registration order, so the depth-sum gauge (first) runs the walk
	// and stashes the max and stalled counts for the two after it.  A
	// caller reading the later gauges in isolation sees the values from
	// the previous full scrape — fine for monitoring, and half the lock
	// traffic of walking the consumer set once per gauge.
	r.GaugeFunc("pbio_relay_queue_depth_frames", "Sum of per-consumer queue depths, in frames.", func() int64 {
		sum, maxDepth, stalled := s.queueStats()
		s.scrapeMaxDepth.Store(maxDepth)
		s.scrapeStalled.Store(stalled)
		return sum
	})
	r.GaugeFunc("pbio_relay_queue_depth_max_frames", "Deepest per-consumer queue, in frames.", s.scrapeMaxDepth.Load)
	r.GaugeFunc("pbio_relay_stalled_consumers", "Consumers whose queue holds frames but has not drained one within the stall window.", s.scrapeStalled.Load)

	// Per-format accounting rides labeled export-time-read families; the
	// values live in the relay's own atomics (resolved per format at
	// meta-registration), the registry reads them at scrape time.
	// Formats registered before telemetry attached are back-filled here;
	// later ones bind at creation.  Cardinality is bounded by
	// maxFormatStats (see mesh.go).
	s.mu.Lock()
	s.fvecs.frames = r.CounterFuncVec("pbio_relay_format_forwarded_frames_total", "Frames broadcast, by format name.", "format")
	s.fvecs.records = r.CounterFuncVec("pbio_relay_format_forwarded_records_total", "Records broadcast, by format name.", "format")
	s.fvecs.bytes = r.CounterFuncVec("pbio_relay_format_forwarded_bytes_total", "Payload bytes forwarded (payload size x consumers enqueued), by format name.", "format")
	s.fvecs.droppedFrames = r.CounterFuncVec("pbio_relay_format_dropped_frames_total", "Frames evicted from consumer queues by the drop-oldest policy, by format name.", "format")
	s.fvecs.droppedRecords = r.CounterFuncVec("pbio_relay_format_dropped_records_total", "Records evicted from consumer queues by the drop-oldest policy, by format name.", "format")
	s.fvecs.queued = r.GaugeFuncVec("pbio_relay_format_queued_frames", "Frames currently held across consumer queues, by format name.", "format")
	for _, fs := range s.fstats {
		s.registerFormatTelemetryLocked(fs)
	}
	if s.fstatsOverflow != nil {
		s.registerFormatTelemetryLocked(s.fstatsOverflow)
	}
	s.mu.Unlock()

	r.Handle("/debug/mesh", s.MeshHandler())
}

// Formats returns the number of distinct formats the relay has seen.
func (s *Server) Formats() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.formats.Len()
}

// downstreamUnion returns the union of every connected consumer's
// subscription — what this relay needs from upstream.  Any
// all-subscriber makes the union All; so does having no consumers at
// all, the conservative "nothing known yet" default: a hop must never
// filter away data that a consumer still mid-registration would have
// wanted, so filtering only engages once explicit subscriptions exist.
// (The converse race is inherent to pub/sub and accepted: a consumer
// that *widens* a hop's union can miss frames broadcast while the wider
// union propagates upstream — subscribe before producing, exactly as
// flat-relay consumers connect before producing.)
func (s *Server) downstreamUnion() transport.Subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.consumers) == 0 {
		return transport.Subscription{All: true}
	}
	names := make(map[string]bool)
	for c := range s.consumers {
		if c.all {
			return transport.Subscription{All: true}
		}
		for _, n := range c.sub.Names {
			names[n] = true
		}
	}
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return transport.Subscription{Names: out}
}

// notifyUplinks kicks every auto-subscription uplink to re-derive and —
// if it changed — re-send the downstream union.  Non-blocking: the kick
// channel holds one pending update; coalescing bursts is exactly right.
func (s *Server) notifyUplinks() {
	s.mu.Lock()
	for u := range s.uplinks {
		if u.static == nil {
			select {
			case u.kick <- struct{}{}:
			default:
			}
		}
	}
	s.mu.Unlock()
}

// Close drops all consumers and refuses new ones.  Producer goroutines
// exit when their connections close (the caller closes the listeners);
// uplink connections are closed here, which unwinds RunUplink.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.consumers {
		delete(s.consumers, c)
		c.q.close()
		// Unblock any pumpConsumer goroutine stuck mid-write so
		// shutdown never waits on a dead peer.
		c.conn.Close()
	}
	for u := range s.uplinks {
		u.conn.Close()
	}
}

// Serve runs both listeners and blocks until either fails.
func (s *Server) Serve(producers, consumers net.Listener) error {
	errc := make(chan error, 2)
	go func() { errc <- s.ServeProducers(producers) }()
	go func() { errc <- s.ServeConsumers(consumers) }()
	err := <-errc
	return fmt.Errorf("relay: %w", err)
}
