package relay

import (
	"bytes"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/leakcheck"
	"repro/pbio"
)

// chaosProfile is one cell of the soak matrix: fault profiles applied to
// the producer links and the consumer links independently.
type chaosProfile struct {
	name     string
	producer faultnet.Profile // seed is derived per connection
	consumer faultnet.Profile
	// lossy marks profiles where records may legitimately not arrive
	// (drops, corruption); only lossless profiles assert full delivery.
	lossy bool
	// singleArch forces all producers onto one architecture.  Corruption
	// profiles require it: with exactly one wire format in flight, a
	// damaged format ID can only miss — it can never alias another valid
	// format of the same size and be misdelivered.
	singleArch bool
}

// chaosSeed returns the base seed for this run: CHAOS_SEED replays a
// previous run exactly; otherwise the wall clock picks a fresh one.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return time.Now().UnixNano()
}

// consResult is what one chaos consumer observed.
type consResult struct {
	valid    int // records that decoded and matched the expected bytes exactly
	invalid  int // records delivered as valid but with wrong contents — must be zero
	rejected int // reads that failed with a detected error (corruption, EOF, ...)
}

// TestChaosSoak drives N producers and M consumers through the relay
// over fault-injecting links and checks the protocol's core promises
// under fire: no panic, no goroutine leaks, and — above all — no corrupt
// record is ever delivered as valid.  Every delivered record must be
// byte-identical to the record a fault-free producer would have written,
// as converted to the consumer's architecture.
//
// The run is reproducible: the base seed is printed at start and can be
// replayed with CHAOS_SEED=<seed>.  CHAOS_LONG=1 runs the full-length
// soak; the default is a short smoke of the same matrix.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	seed := chaosSeed(t)
	t.Logf("chaos base seed %d — replay with CHAOS_SEED=%d", seed, seed)

	const corruptProb = 0.004
	profiles := []chaosProfile{
		{name: "clean"},
		{
			name:     "fragmented",
			producer: faultnet.Profile{ShortReads: true, FragmentWrites: true},
			consumer: faultnet.Profile{ShortReads: true, FragmentWrites: true},
		},
		{
			// Latency rides the producer links only: a consumer slowed the
			// same way would (correctly) overflow its relay queue and be
			// dropped, which is the lossy drop test's job, not this one's.
			name:     "latency",
			producer: faultnet.Profile{FragmentWrites: true, Latency: 200 * time.Microsecond},
			consumer: faultnet.Profile{ShortReads: true},
		},
		{
			name:       "corrupt-producer",
			producer:   faultnet.Profile{CorruptProb: corruptProb},
			lossy:      true,
			singleArch: true,
		},
		{
			name:       "corrupt-consumer",
			consumer:   faultnet.Profile{CorruptProb: corruptProb},
			lossy:      true,
			singleArch: true,
		},
		{
			name:     "drops",
			producer: faultnet.Profile{FragmentWrites: true, DropAfter: 1500},
			lossy:    true,
		},
	}
	for _, cp := range profiles {
		cp := cp
		t.Run(cp.name, func(t *testing.T) {
			runChaos(t, cp, seed)
		})
	}
}

func runChaos(t *testing.T, cp chaosProfile, seed int64) {
	leakcheck.Check(t)

	nProducers, nConsumers, records := 3, 3, 40
	if os.Getenv("CHAOS_LONG") != "" {
		nProducers, nConsumers, records = 4, 5, 400
	}
	total := nProducers * records

	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pln.Close()
		t.Skipf("no loopback listener: %v", err)
	}
	s := NewServer()
	s.SetTimeouts(5*time.Second, 5*time.Second)
	// End-to-end integrity: producers checksum their frames, and the relay
	// checksums the meta frames it re-encodes — without this, meta on the
	// consumer link is the one unprotected hop, and a corrupted format
	// description silently mis-decodes every record that follows it.
	s.SetChecksums(true)
	go func() { _ = s.ServeProducers(pln) }()
	go func() { _ = s.ServeConsumers(cln) }()
	defer func() {
		pln.Close()
		cln.Close()
		s.Close()
	}()

	// Consumers subscribe first so live broadcasts reach everyone.
	prodArches := []string{"sparc-v8", "x86", "alpha", "sparc-v9-64"}
	consArches := []string{"x86", "alpha", "sparc-v8", "x86-64", "alpha"}
	results := make(chan consResult, nConsumers)
	var consConns struct {
		sync.Mutex
		conns []net.Conn
	}
	// Per-consumer progress counters, for producer-side flow control in
	// lossless profiles (the relay itself has none by design: a consumer
	// that falls a queue behind is dropped, which is correct for a broker
	// but fatal to a full-delivery assertion).
	consumed := make([]atomic.Int64, nConsumers)
	var written atomic.Int64
	for ci := 0; ci < nConsumers; ci++ {
		go func(ci int) {
			res := consResult{}
			defer func() { results <- res }()
			raw, err := net.Dial("tcp", cln.Addr().String())
			if err != nil {
				return
			}
			conn := net.Conn(raw)
			if !zeroProfile(cp.consumer) {
				conn = faultnet.Wrap(raw, cp.consumer.WithSeed(seed+int64(100+ci)))
			}
			consConns.Lock()
			consConns.conns = append(consConns.conns, conn)
			consConns.Unlock()

			ctx, err := pbio.NewContext(pbio.WithArch(consArches[ci%len(consArches)]))
			if err != nil {
				t.Error(err)
				return
			}
			cf, err := ctx.Register("sample",
				pbio.F("seq", pbio.Int),
				pbio.F("v", pbio.Double),
				pbio.Array("tag", pbio.Char, 8),
			)
			if err != nil {
				t.Error(err)
				return
			}
			r := ctx.NewReader(conn)
			r.SetTimeout(15 * time.Second)
			expected := cf.NewRecord()
			rec := cf.NewRecord()
			for {
				m, err := r.Read()
				if err != nil {
					// Any detected failure — corruption, peer gone, EOF,
					// deadline — ends this consumer.  A pbio stream has no
					// relay between it and the fault, so after a framing
					// error the stream is not trustworthy; stopping is the
					// correct response, delivering garbage is the bug.
					res.rejected++
					return
				}
				if err := m.DecodeInto(cf, rec); err != nil {
					res.rejected++
					return
				}
				seq, _ := rec.Int("seq", 0)
				// Rebuild the record a fault-free producer would have
				// produced, converted to this consumer's architecture, and
				// demand byte identity.
				expected.MustSetInt("seq", 0, seq)
				expected.MustSetFloat("v", 0, float64(seq)*0.5)
				expected.MustSetString("tag", "pub")
				if seq < 0 || seq >= int64(nProducers*100000) ||
					!bytes.Equal(rec.Bytes(), expected.Bytes()) {
					res.invalid++
					t.Errorf("consumer %d: corrupt record delivered as valid (seq %d)", ci, seq)
					return
				}
				res.valid++
				consumed[ci].Add(1)
				if !cp.lossy && res.valid == total {
					return // lossless runs read exactly the full set
				}
			}
		}(ci)
	}
	time.Sleep(150 * time.Millisecond)

	// Producers publish disjoint seq ranges: producer pi owns
	// [pi*100000, pi*100000+records).
	var pwg sync.WaitGroup
	for pi := 0; pi < nProducers; pi++ {
		pwg.Add(1)
		go func(pi int) {
			defer pwg.Done()
			raw, err := net.Dial("tcp", pln.Addr().String())
			if err != nil {
				return
			}
			conn := net.Conn(raw)
			if !zeroProfile(cp.producer) {
				conn = faultnet.Wrap(raw, cp.producer.WithSeed(seed+int64(pi)))
			}
			defer conn.Close()
			arch := prodArches[0]
			if !cp.singleArch {
				arch = prodArches[pi%len(prodArches)]
			}
			ctx, err := pbio.NewContext(pbio.WithArch(arch))
			if err != nil {
				t.Error(err)
				return
			}
			f, err := ctx.Register("sample",
				pbio.F("seq", pbio.Int),
				pbio.F("v", pbio.Double),
				pbio.Array("tag", pbio.Char, 8),
			)
			if err != nil {
				t.Error(err)
				return
			}
			w := ctx.NewWriter(conn)
			w.EnableChecksums()
			w.SetTimeout(5 * time.Second)
			rec := f.NewRecord()
			for i := 0; i < records; i++ {
				// Lossless profiles assert full delivery, so producers
				// keep the number of frames in flight below the relay's
				// per-consumer queue depth; lossy profiles run flat out
				// and let the chips fall.
				if !cp.lossy {
					bail := time.Now().Add(15 * time.Second)
					for {
						slowest := consumed[0].Load()
						for k := 1; k < nConsumers; k++ {
							if v := consumed[k].Load(); v < slowest {
								slowest = v
							}
						}
						if written.Load()-slowest < consumerQueue-64 ||
							time.Now().After(bail) {
							break
						}
						time.Sleep(time.Millisecond)
					}
				}
				seq := int64(pi*100000 + i)
				rec.MustSetInt("seq", 0, seq)
				rec.MustSetFloat("v", 0, float64(seq)*0.5)
				rec.MustSetString("tag", "pub")
				if err := w.Write(rec); err != nil {
					// Injected drops and relay-side disconnects are part
					// of the experiment; a producer dying early is fine.
					return
				}
				written.Add(1)
			}
		}(pi)
	}
	pwg.Wait()

	// Lossless consumers exit on their own once they have the full set.
	// Lossy runs have no delivery promise, so give in-flight frames time
	// to drain and then cut the consumers loose.
	if cp.lossy {
		time.Sleep(500 * time.Millisecond)
		consConns.Lock()
		for _, c := range consConns.conns {
			c.Close()
		}
		consConns.Unlock()
	}
	defer func() {
		consConns.Lock()
		defer consConns.Unlock()
		for _, c := range consConns.conns {
			c.Close()
		}
	}()

	invalid, valid := 0, 0
	for i := 0; i < nConsumers; i++ {
		res := <-results
		invalid += res.invalid
		valid += res.valid
		if !cp.lossy && res.valid != total {
			t.Errorf("lossless profile: consumer got %d/%d records", res.valid, total)
		}
	}
	if invalid != 0 {
		t.Fatalf("%d corrupt records delivered as valid (seed %d)", invalid, seed)
	}
	st := s.Stats()
	t.Logf("profile %s: %d/%d records validated per-consumer total %d; relay stats %+v",
		cp.name, valid, total*nConsumers, valid, st)
	if !cp.lossy && (st.BadProducers != 0 || st.Resyncs != 0) {
		t.Errorf("lossless profile recorded producer errors: %+v", st)
	}
}

// zeroProfile reports whether p injects no faults at all.
func zeroProfile(p faultnet.Profile) bool {
	return !p.ShortReads && !p.FragmentWrites && p.CorruptProb == 0 &&
		p.DropAfter == 0 && p.Latency == 0 && p.Model == nil
}
