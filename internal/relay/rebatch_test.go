package relay

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/abi"
	"repro/internal/native"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pbio"
)

// tickFormat is a small fixed-size format for batching tests.
func tickFormat(t *testing.T) *wire.Format {
	t.Helper()
	return wire.MustLayout(&wire.Schema{
		Name: "tick",
		Fields: []wire.FieldSpec{
			{Name: "seq", Type: abi.Int, Count: 1},
			{Name: "v", Type: abi.Double, Count: 1},
		},
	}, &abi.X86x64)
}

// stageStream renders a full producer byte stream (meta + records) into
// one buffer, so the relay receives it in as few reads as possible and
// its rebatching window actually sees runs of buffered frames.
func stageStream(t *testing.T, f *wire.Format, n int, batch bool) ([]byte, []*native.Record) {
	t.Helper()
	var buf bytes.Buffer
	w := transport.NewWriter(&buf)
	recs := make([]*native.Record, n)
	images := make([][]byte, n)
	for i := range recs {
		recs[i] = native.New(f)
		native.FillDeterministic(recs[i], int64(i))
		images[i] = recs[i].Buf
	}
	if batch {
		if err := w.WriteBatch(f, images); err != nil {
			t.Fatal(err)
		}
	} else {
		for _, img := range images {
			if err := w.WriteRecord(f, img); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes(), recs
}

// drainConsumer reads n records from the relay's consumer side with the
// raw transport reader, so frame shape (Batched) is observable.
func drainConsumer(t *testing.T, addr string, n int) ([]transport.Message, *transport.Metrics) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	r := transport.NewReader(conn)
	t.Cleanup(func() { r.Close() })
	m := transport.NewMetrics(telemetry.NewRegistry())
	r.SetMetrics(m)
	var out []transport.Message
	for len(out) < n {
		var msg transport.Message
		if err := r.ReadMessageInto(&msg); err != nil {
			t.Fatalf("after %d records: %v", len(out), err)
		}
		msg.Data = append([]byte(nil), msg.Data...)
		out = append(out, msg)
	}
	return out, m
}

func TestRelayRebatchesRecordRuns(t *testing.T) {
	for _, sums := range []bool{false, true} {
		name := "plain"
		if sums {
			name = "checksummed"
		}
		t.Run(name, func(t *testing.T) {
			pln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Skipf("no loopback listener: %v", err)
			}
			cln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				pln.Close()
				t.Skipf("no loopback listener: %v", err)
			}
			s := NewServer()
			s.SetChecksums(sums)
			s.SetRebatching(1 << 16)
			go func() { _ = s.ServeProducers(pln) }()
			go func() { _ = s.ServeConsumers(cln) }()
			t.Cleanup(func() { pln.Close(); cln.Close(); s.Close() })

			const n = 16
			f := tickFormat(t)
			stream, recs := stageStream(t, f, n, false)

			type result struct {
				msgs []transport.Message
				met  *transport.Metrics
			}
			done := make(chan result, 1)
			go func() {
				msgs, met := drainConsumer(t, cln.Addr().String(), n)
				done <- result{msgs, met}
			}()
			time.Sleep(100 * time.Millisecond)

			conn, err := net.Dial("tcp", pln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			// One write delivers the whole run; the relay's read loop sees
			// the frames buffered back-to-back and coalesces them.
			if _, err := conn.Write(stream); err != nil {
				t.Fatal(err)
			}
			conn.Close()

			res := <-done
			for i, msg := range res.msgs {
				if string(msg.Data) != string(recs[i].Buf) {
					t.Errorf("record %d: bytes differ through the relay", i)
				}
			}
			// The producer sent n individual data frames; the relay must
			// have merged at least some of them (the whole stream arrived
			// in one segment, so all but perhaps a leading sliver coalesce).
			if got := res.met.BatchRecordsRead.Value(); got == 0 {
				t.Error("no records arrived in batch frames; rebatching did not engage")
			}
			if res.met.BatchFramesRead.Value() >= int64(n) {
				t.Error("as many batch frames as records; nothing was coalesced")
			}
		})
	}
}

func TestRelayForwardsProducerBatchVerbatim(t *testing.T) {
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pln.Close()
		t.Skipf("no loopback listener: %v", err)
	}
	s := NewServer() // rebatching off: batch frames pass through untouched
	go func() { _ = s.ServeProducers(pln) }()
	go func() { _ = s.ServeConsumers(cln) }()
	t.Cleanup(func() { pln.Close(); cln.Close(); s.Close() })

	const n = 8
	f := tickFormat(t)
	stream, recs := stageStream(t, f, n, true)

	type result struct {
		msgs []transport.Message
		met  *transport.Metrics
	}
	done := make(chan result, 1)
	go func() {
		msgs, met := drainConsumer(t, cln.Addr().String(), n)
		done <- result{msgs, met}
	}()
	time.Sleep(100 * time.Millisecond)

	conn, err := net.Dial("tcp", pln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(stream); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	res := <-done
	for i, msg := range res.msgs {
		if !msg.Batched {
			t.Errorf("record %d: not delivered from a batch frame", i)
		}
		if string(msg.Data) != string(recs[i].Buf) {
			t.Errorf("record %d: bytes differ through the relay", i)
		}
	}
	if got := res.met.BatchFramesRead.Value(); got != 1 {
		t.Errorf("consumer saw %d batch frames, want 1 (verbatim forward)", got)
	}
}

// TestRelayRebatchFusedDecode closes the loop on relay-originated
// batches: a producer sends per-record frames, the relay coalesces them
// into batch frames, and a heterogeneous pbio consumer decodes them with
// DecodeBatch — so records that were never batched at the sender still
// ride the fused DCG path after the relay.
func TestRelayRebatchFusedDecode(t *testing.T) {
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pln.Close()
		t.Skipf("no loopback listener: %v", err)
	}
	s := NewServer()
	s.SetRebatching(1 << 16)
	go func() { _ = s.ServeProducers(pln) }()
	go func() { _ = s.ServeConsumers(cln) }()
	t.Cleanup(func() { pln.Close(); cln.Close(); s.Close() })

	// Producer stream: per-record frames in a big-endian layout, staged
	// into one segment so the relay's rebatch window sees the whole run.
	const n = 16
	f := wire.MustLayout(&wire.Schema{
		Name: "tick",
		Fields: []wire.FieldSpec{
			{Name: "seq", Type: abi.Int, Count: 1},
			{Name: "v", Type: abi.Double, Count: 1},
		},
	}, &abi.SparcV8)
	stream, recs := stageStream(t, f, n, false)

	type result struct {
		batched int // records delivered from multi-record DecodeBatch calls
		seqs    []int64
		err     error
	}
	done := make(chan result, 1)
	go func() {
		var res result
		defer func() { done <- res }()
		conn, err := net.Dial("tcp", cln.Addr().String())
		if err != nil {
			res.err = err
			return
		}
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		ctx, err := pbio.NewContext(pbio.WithArch("x86-64"))
		if err != nil {
			res.err = err
			return
		}
		rf, err := ctx.Register("tick", pbio.F("seq", pbio.Int), pbio.F("v", pbio.Double))
		if err != nil {
			res.err = err
			return
		}
		r := ctx.NewReader(conn)
		defer r.Close()
		rb := rf.NewRecordBatch()
		for len(res.seqs) < n {
			m, err := r.Read()
			if err != nil {
				res.err = err
				return
			}
			cnt, err := m.DecodeBatch(rf, rb)
			if err != nil {
				res.err = err
				return
			}
			if cnt > 1 {
				res.batched += cnt
			}
			for i := 0; i < cnt; i++ {
				seq, _ := rb.View(i).Int("seq", 0)
				res.seqs = append(res.seqs, seq)
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)

	conn, err := net.Dial("tcp", pln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(stream); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	for i, seq := range res.seqs {
		want, _ := recs[i].Int("seq", 0)
		if seq != want {
			t.Errorf("record %d: seq=%d, want %d (conversion through relay batch)", i, seq, want)
		}
	}
	// The relay merged at least part of the run, and those records came
	// through multi-record fused decodes.
	if res.batched == 0 {
		t.Error("no records arrived via multi-record DecodeBatch; relay-originated batches missed the fused path")
	}
}

func TestRelayDropsCorruptBatchAndContinues(t *testing.T) {
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pln.Close()
		t.Skipf("no loopback listener: %v", err)
	}
	s := NewServer()
	go func() { _ = s.ServeProducers(pln) }()
	go func() { _ = s.ServeConsumers(cln) }()
	t.Cleanup(func() { pln.Close(); cln.Close(); s.Close() })

	f := tickFormat(t)
	// Stream: meta, a checksummed batch whose body will be corrupted,
	// then a clean record.  The relay must drop the batch whole and still
	// deliver the final record.
	var buf bytes.Buffer
	w := transport.NewWriter(&buf)
	w.SetChecksums(true)
	recs := make([]*native.Record, 3)
	images := make([][]byte, 3)
	for i := range recs {
		recs[i] = native.New(f)
		native.FillDeterministic(recs[i], int64(i))
		images[i] = recs[i].Buf
	}
	if err := w.WriteBatch(f, images[:2]); err != nil {
		t.Fatal(err)
	}
	batchEnd := buf.Len()
	if err := w.WriteRecord(f, images[2]); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	stream[batchEnd-1] ^= 0xff // flip a byte inside the batch body

	done := make(chan []transport.Message, 1)
	go func() {
		msgs, _ := drainConsumer(t, cln.Addr().String(), 1)
		done <- msgs
	}()
	time.Sleep(100 * time.Millisecond)

	conn, err := net.Dial("tcp", pln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(stream); err != nil {
		t.Fatal(err)
	}

	msgs := <-done
	if string(msgs[0].Data) != string(recs[2].Buf) {
		t.Error("record after the corrupt batch did not survive")
	}
	conn.Close()
	st := s.Stats()
	if st.ChecksumFailures != 1 {
		t.Errorf("ChecksumFailures=%d, want 1", st.ChecksumFailures)
	}
	if st.BadProducers != 0 {
		t.Errorf("corrupt batch dropped the producer: %+v", st)
	}
}
