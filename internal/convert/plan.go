// Package convert plans and executes translations between a wire format
// (the sender's native layout, arrived on the wire under NDR) and the
// receiver's expected native format.
//
// A Plan is computed once per (wire format, expected format) pair: fields
// are matched by name and each match is classified into the cheapest
// sufficient operation — raw copy, byte-swap, integer size conversion,
// float width conversion, char copy, or zero-fill.  The Plan is then
// executed either by the table-driven interpreter in this package (the
// paper's "interpreted conversion", §4.3) or compiled into a specialized
// program by package dcg (the paper's dynamic-code-generation path).
package convert

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/wire"
)

// OpKind classifies the work needed for one matched field.
type OpKind uint8

const (
	// OpCopy copies bytes unchanged: identical element size and byte
	// order (or single-byte elements).
	OpCopy OpKind = iota
	// OpSwap copies elements of equal size, reversing byte order.
	OpSwap
	// OpIntCvt converts integer elements whose sizes differ
	// (sign/zero-extending or truncating), possibly across byte orders.
	OpIntCvt
	// OpFloatCvt converts between float32 and float64 elements,
	// possibly across byte orders.
	OpFloatCvt
	// OpZero zero-fills a destination field with no wire counterpart.
	OpZero
	// OpStruct converts nested structure elements through a sub-plan —
	// the paper's "call subroutines to convert complex subtypes" (§3).
	OpStruct
)

var opKindNames = [...]string{
	OpCopy: "copy", OpSwap: "swap", OpIntCvt: "intcvt",
	OpFloatCvt: "floatcvt", OpZero: "zero", OpStruct: "struct",
}

// String names the op kind.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Op is one planned field conversion.
type Op struct {
	Kind             OpKind
	SrcOff, DstOff   int        // byte offsets in the wire / native records
	SrcSize, DstSize int        // element sizes (for OpStruct: the strides)
	Count            int        // elements converted
	TailZero         int        // destination bytes to zero after Count elements
	SrcOrder         abi.Endian // byte order of the wire elements
	DstOrder         abi.Endian // byte order of the native elements
	Signed           bool       // integer conversions: sign- vs zero-extend
	Sub              *Plan      // OpStruct: converts one element
}

// srcLen returns the number of source bytes the op reads.
func (o *Op) srcLen() int { return o.SrcSize * o.Count }

// dstLen returns the number of destination bytes the op writes, including
// the zeroed tail.
func (o *Op) dstLen() int { return o.DstSize*o.Count + o.TailZero }

// Plan is a compiled-once description of the conversion from one wire
// format to one expected native format.
type Plan struct {
	Wire    *wire.Format
	Native  *wire.Format
	Ops     []Op
	NoOp    bool // layouts identical: data usable straight from the buffer
	InPlace bool // safe to run with dst and src aliasing the same buffer
	Missing int  // expected fields absent from the wire (zero-filled)
	Ignored int  // wire fields with no expected counterpart (type extension)
}

// NewPlan matches wireFmt against expected by field name and plans the
// per-field conversions.
func NewPlan(wireFmt, expected *wire.Format) (*Plan, error) {
	if err := wireFmt.Validate(); err != nil {
		return nil, fmt.Errorf("convert: wire format: %w", err)
	}
	if err := expected.Validate(); err != nil {
		return nil, fmt.Errorf("convert: expected format: %w", err)
	}
	p := &Plan{Wire: wireFmt, Native: expected}
	if wire.SameLayout(wireFmt, expected) {
		p.NoOp = true
		p.InPlace = true
		return p, nil
	}
	m := wire.Match(wireFmt, expected)
	p.Missing = m.Missing
	p.Ignored = len(m.Unexpected)
	p.Ops = make([]Op, 0, len(m.Matches))
	for _, fm := range m.Matches {
		op, err := planField(fm)
		if err != nil {
			return nil, err
		}
		p.Ops = append(p.Ops, op)
	}
	p.finishOps()
	p.InPlace = inPlaceSafe(p.Ops)
	return p, nil
}

// planField classifies the conversion for one matched field.
func planField(fm wire.FieldMatch) (Op, error) {
	ef := fm.Expected
	if fm.Wire == nil {
		return Op{
			Kind:   OpZero,
			DstOff: ef.Offset,
			// Represent the whole field as tail.
			DstSize:  ef.Size,
			TailZero: ef.ByteLen(),
		}, nil
	}
	wf := fm.Wire
	op := Op{
		SrcOff: wf.Offset, DstOff: ef.Offset,
		SrcSize: wf.Size, DstSize: ef.Size,
		Signed: wf.Type.Signed(),
	}
	// Element count: convert the overlap, zero any destination tail.
	op.Count = wf.Count
	if ef.Count < op.Count {
		op.Count = ef.Count
	}
	op.TailZero = (ef.Count - op.Count) * ef.Size

	switch {
	case wf.IsStruct() != ef.IsStruct():
		return Op{}, fmt.Errorf("convert: field %q: structure on only one side", ef.Name)
	case wf.IsStruct():
		sub, err := NewPlan(wf.Sub, ef.Sub)
		if err != nil {
			return Op{}, fmt.Errorf("convert: field %q: %w", ef.Name, err)
		}
		if sub.NoOp {
			// Identical nested layouts degenerate to a block copy.
			op.Kind = OpCopy
			return op, nil
		}
		op.Kind = OpStruct
		op.Sub = sub
		return op, nil
	case wf.Type == abi.Char && ef.Type == abi.Char:
		op.Kind = OpCopy
		// Char arrays copy the byte overlap; sizes are 1.
		return op, nil
	case wf.Type.Floating() && ef.Type.Floating():
		if wf.Size == ef.Size {
			op.Kind = OpSwap // resolved to copy below if orders agree
		} else {
			op.Kind = OpFloatCvt
		}
	case (wf.Type.Integer() || wf.Type == abi.Char) && (ef.Type.Integer() || ef.Type == abi.Char):
		if wf.Size == ef.Size {
			op.Kind = OpSwap
		} else {
			op.Kind = OpIntCvt
		}
	default:
		return Op{}, fmt.Errorf("convert: field %q: cannot convert %v to %v",
			ef.Name, wf.Type, ef.Type)
	}
	return op, nil
}

// finishOp resolves Swap to Copy when byte orders agree and records the
// orders.  Split from planField so NewPlan can set orders centrally.
func (p *Plan) finishOps() {
	for i := range p.Ops {
		op := &p.Ops[i]
		op.SrcOrder = p.Wire.Order
		op.DstOrder = p.Native.Order
		if op.Kind == OpSwap && (op.SrcOrder == op.DstOrder || op.SrcSize == 1) {
			op.Kind = OpCopy
		}
	}
}

// inPlaceSafe reports whether executing the ops with destination and
// source aliasing the same buffer preserves correctness.  Ops run in
// order; each op reads a full source element before writing the
// destination element.  Safety requires that (a) within an op, the
// destination never overtakes unread source bytes — guaranteed when
// DstOff <= SrcOff and DstSize <= SrcSize — and (b) no op's destination
// range overlaps a *later* op's source range.
func inPlaceSafe(ops []Op) bool {
	for i := range ops {
		o := &ops[i]
		if o.Kind == OpZero {
			// Zero-fill writes only; treat like any writer for (b).
		} else {
			d0, d1 := o.DstOff, o.DstOff+o.dstLen()
			s0, s1 := o.SrcOff, o.SrcOff+o.srcLen()
			overlaps := d0 < s1 && s0 < d1
			if o.Kind == OpStruct {
				// A sub-plan's internal moves are only provably safe
				// in place when each element converts exactly onto
				// itself and the sub-plan is itself in-place safe.
				if overlaps && !(o.DstOff == o.SrcOff && o.DstSize == o.SrcSize && o.Sub.InPlace) {
					return false
				}
			} else if overlaps && (o.DstOff > o.SrcOff || o.DstSize > o.SrcSize) {
				return false
			}
		}
		for j := i + 1; j < len(ops); j++ {
			l := &ops[j]
			if l.Kind == OpZero {
				continue
			}
			d0, d1 := ops[i].DstOff, ops[i].DstOff+ops[i].dstLen()
			s0, s1 := l.SrcOff, l.SrcOff+l.srcLen()
			if d0 < s1 && s0 < d1 {
				return false
			}
		}
	}
	return true
}

// String renders the plan for debugging and the pbio-dump tool.
func (p *Plan) String() string {
	if p.NoOp {
		return fmt.Sprintf("plan %q -> %q: identical layout (no-op)", p.Wire.Name, p.Native.Name)
	}
	s := fmt.Sprintf("plan %q (%s) -> %q (%s): %d ops, %d missing, %d ignored, inplace=%v\n",
		p.Wire.Name, p.Wire.Arch, p.Native.Name, p.Native.Arch,
		len(p.Ops), p.Missing, p.Ignored, p.InPlace)
	for i := range p.Ops {
		o := &p.Ops[i]
		s += fmt.Sprintf("  %-8s src@%d(%d) -> dst@%d(%d) x%d tail %d\n",
			o.Kind, o.SrcOff, o.SrcSize, o.DstOff, o.DstSize, o.Count, o.TailZero)
	}
	return s
}
