package convert

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/wire"
)

func TestAssessExact(t *testing.T) {
	a := wire.MustLayout(mixedSchema(), &abi.X86)
	b := wire.MustLayout(mixedSchema(), &abi.X86)
	c, err := Assess(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Exact || !c.Lossless {
		t.Errorf("identical layouts: %+v", c)
	}
	if !strings.Contains(c.String(), "exact") {
		t.Errorf("String: %s", c)
	}
}

func TestAssessHeterogeneousLossless(t *testing.T) {
	w := wire.MustLayout(mixedSchema(), &abi.SparcV8)
	e := wire.MustLayout(mixedSchema(), &abi.X86)
	c, err := Assess(w, e)
	if err != nil {
		t.Fatal(err)
	}
	if c.Exact {
		t.Error("sparc->x86 reported exact")
	}
	if !c.Lossless {
		t.Errorf("same schema ILP32<->ILP32 should be lossless: %s", c)
	}
	if len(c.Converted) == 0 {
		t.Error("no conversions reported for a heterogeneous pair")
	}
	// Byte order change must be mentioned for multi-byte fields.
	found := false
	for _, s := range c.Converted {
		if strings.Contains(s, "byte order") {
			found = true
		}
	}
	if !found {
		t.Errorf("byte order change unreported: %v", c.Converted)
	}
}

func TestAssessNarrowing(t *testing.T) {
	s := &wire.Schema{Name: "l", Fields: []wire.FieldSpec{{Name: "x", Type: abi.Long, Count: 1}}}
	w := wire.MustLayout(s, &abi.SparcV9x64) // 8-byte long
	e := wire.MustLayout(s, &abi.X86)        // 4-byte long
	c, err := Assess(w, e)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lossless {
		t.Error("8->4 byte long reported lossless")
	}
	if len(c.Narrowed) != 1 || c.Narrowed[0] != "x" {
		t.Errorf("Narrowed = %v", c.Narrowed)
	}
	// Widening the other way is lossless.
	c2, err := Assess(e, w)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Lossless {
		t.Errorf("4->8 byte long not lossless: %s", c2)
	}
}

func TestAssessMissingAndIgnored(t *testing.T) {
	base := mixedSchema()
	sub := &wire.Schema{Name: base.Name, Fields: base.Fields[:3]}
	ext := &wire.Schema{Name: base.Name, Fields: append(
		[]wire.FieldSpec{{Name: "extra", Type: abi.Int, Count: 1}}, base.Fields...)}

	// Wire missing fields the receiver expects.
	c, err := Assess(wire.MustLayout(sub, &abi.X86), wire.MustLayout(base, &abi.X86))
	if err != nil {
		t.Fatal(err)
	}
	if c.Lossless || len(c.Missing) != len(base.Fields)-3 {
		t.Errorf("missing fields: %+v", c)
	}

	// Wire carrying fields the receiver ignores: still lossless for the
	// receiver's data.
	c2, err := Assess(wire.MustLayout(ext, &abi.X86), wire.MustLayout(base, &abi.X86))
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Ignored) != 1 || c2.Ignored[0] != "extra" {
		t.Errorf("Ignored = %v", c2.Ignored)
	}
	if !c2.Lossless {
		t.Errorf("extension should be lossless for the receiver: %s", c2)
	}
}

func TestAssessArrayTruncation(t *testing.T) {
	s8 := &wire.Schema{Name: "a", Fields: []wire.FieldSpec{{Name: "v", Type: abi.Int, Count: 8}}}
	s4 := &wire.Schema{Name: "a", Fields: []wire.FieldSpec{{Name: "v", Type: abi.Int, Count: 4}}}
	c, err := Assess(wire.MustLayout(s8, &abi.X86), wire.MustLayout(s4, &abi.X86))
	if err != nil {
		t.Fatal(err)
	}
	if c.Lossless || len(c.Truncated) != 1 {
		t.Errorf("truncation unreported: %+v", c)
	}
}

func TestAssessNestedRecursion(t *testing.T) {
	w := wire.MustLayout(particleSchema(2), &abi.SparcV9x64)
	e := wire.MustLayout(particleSchema(2), &abi.X86)
	c, err := Assess(w, e)
	if err != nil {
		t.Fatal(err)
	}
	// iter is a Long: 8 -> 4 narrows... particleSchema has no long; but
	// nested fields must appear with dotted names in Converted.
	foundNested := false
	for _, s := range c.Converted {
		if strings.HasPrefix(s, "p.pos.") || strings.HasPrefix(s, "hdr.") {
			foundNested = true
		}
	}
	if !foundNested {
		t.Errorf("nested conversions unreported: %v", c.Converted)
	}
}

func TestAssessStructureMismatch(t *testing.T) {
	w := wire.MustLayout(&wire.Schema{Name: "r", Fields: []wire.FieldSpec{
		{Name: "v", Type: abi.Double, Count: 1}}}, &abi.X86)
	e := wire.MustLayout(&wire.Schema{Name: "r", Fields: []wire.FieldSpec{
		{Name: "v", Count: 1, Sub: &wire.Schema{Name: "s", Fields: []wire.FieldSpec{
			{Name: "a", Type: abi.Double, Count: 1}}}}}}, &abi.X86)
	c, err := Assess(w, e)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lossless {
		t.Error("structure mismatch reported lossless")
	}
}

func TestAssessRejectsInvalid(t *testing.T) {
	good := wire.MustLayout(mixedSchema(), &abi.X86)
	bad := &wire.Format{}
	if _, err := Assess(bad, good); err == nil {
		t.Error("invalid wire format accepted")
	}
	if _, err := Assess(good, bad); err == nil {
		t.Error("invalid expected format accepted")
	}
}
