package convert

import (
	"fmt"
	"strings"

	"repro/internal/wire"
)

// Compatibility assessment.
//
// PBIO's by-name matching silently tolerates format differences: extra
// wire fields are ignored, missing fields zeroed, and size differences
// converted (possibly narrowing).  Applications deciding at run time
// whether to accept an incoming format — the reflection workflows of
// §4.4 — need those consequences spelled out before decoding.

// Compat describes what converting wireFmt records into an expected
// format would preserve, drop, or risk.
type Compat struct {
	// Exact is true when the layouts are identical (zero-copy receive).
	Exact bool
	// Lossless is true when every expected field is present and no
	// conversion can lose information.
	Lossless bool
	// Converted lists matched fields needing representation changes
	// (byte order, offset, or size), with a description each.
	Converted []string
	// Narrowed lists matched fields whose destination is narrower than
	// the wire value (possible truncation / precision loss).
	Narrowed []string
	// Truncated lists matched array fields with fewer destination
	// elements than the wire carries.
	Truncated []string
	// Missing lists expected fields absent from the wire (zero-filled).
	Missing []string
	// Ignored lists wire fields with no expected counterpart.
	Ignored []string
}

// Assess computes the compatibility report for converting wireFmt records
// into expected records.
func Assess(wireFmt, expected *wire.Format) (*Compat, error) {
	if err := wireFmt.Validate(); err != nil {
		return nil, err
	}
	if err := expected.Validate(); err != nil {
		return nil, err
	}
	c := &Compat{Lossless: true}
	if wire.SameLayout(wireFmt, expected) {
		c.Exact = true
		return c, nil
	}
	assessInto(c, wireFmt, expected, "")
	return c, nil
}

func assessInto(c *Compat, wireFmt, expected *wire.Format, prefix string) {
	m := wire.Match(wireFmt, expected)
	for _, fm := range m.Matches {
		name := prefix + fm.Expected.Name
		if fm.Wire == nil {
			c.Missing = append(c.Missing, name)
			c.Lossless = false
			continue
		}
		wf, ef := fm.Wire, fm.Expected
		if wf.IsStruct() != ef.IsStruct() {
			// NewPlan would reject this pairing outright.
			c.Ignored = append(c.Ignored, name+" (structure mismatch)")
			c.Lossless = false
			continue
		}
		if wf.IsStruct() {
			if ef.Count < wf.Count {
				c.Truncated = append(c.Truncated,
					fmt.Sprintf("%s (%d of %d elements)", name, ef.Count, wf.Count))
				c.Lossless = false
			}
			assessInto(c, wf.Sub, ef.Sub, name+".")
			continue
		}
		if ef.Count < wf.Count {
			c.Truncated = append(c.Truncated,
				fmt.Sprintf("%s (%d of %d elements)", name, ef.Count, wf.Count))
			c.Lossless = false
		}
		var changes []string
		if wireFmt.Order != expected.Order && wf.Size > 1 {
			changes = append(changes, "byte order")
		}
		if wf.Offset != ef.Offset {
			changes = append(changes, "offset")
		}
		if wf.Size != ef.Size {
			changes = append(changes, fmt.Sprintf("size %d->%d", wf.Size, ef.Size))
			if ef.Size < wf.Size {
				c.Narrowed = append(c.Narrowed, name)
				c.Lossless = false
			}
		}
		if len(changes) > 0 {
			c.Converted = append(c.Converted, name+" ("+strings.Join(changes, ", ")+")")
		}
	}
	for _, f := range m.Unexpected {
		c.Ignored = append(c.Ignored, prefix+f.Name)
	}
}

// String renders the report for humans.
func (c *Compat) String() string {
	if c.Exact {
		return "exact layout match: records usable directly from the receive buffer"
	}
	var b strings.Builder
	if c.Lossless {
		b.WriteString("convertible without loss")
	} else {
		b.WriteString("convertible WITH caveats")
	}
	section := func(title string, items []string) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(&b, "\n  %s: %s", title, strings.Join(items, ", "))
	}
	section("converted", c.Converted)
	section("narrowed (possible data loss)", c.Narrowed)
	section("truncated arrays", c.Truncated)
	section("missing (zero-filled)", c.Missing)
	section("ignored wire fields", c.Ignored)
	return b.String()
}
