package convert

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/native"
	"repro/internal/wire"
)

// one lays out a single-field schema.
func one(t abi.CType, count int, arch *abi.Arch) *wire.Format {
	return wire.MustLayout(&wire.Schema{
		Name:   "one",
		Fields: []wire.FieldSpec{{Name: "v", Type: t, Count: count}},
	}, arch)
}

// TestCrossTypeConversionMatrix documents which same-name cross-type
// conversions PBIO performs and which it rejects: integer<->integer (any
// widths, any signedness) and float<->float convert; char<->char copies;
// anything crossing the integer/float/char class boundary is rejected at
// plan time.
func TestCrossTypeConversionMatrix(t *testing.T) {
	ints := []abi.CType{abi.Short, abi.Int, abi.Long, abi.LongLong, abi.UShort, abi.UInt, abi.ULong, abi.ULongLong}
	floats := []abi.CType{abi.Float, abi.Double}
	class := func(ct abi.CType) string {
		switch {
		case ct == abi.Char:
			return "char"
		case ct.Floating():
			return "float"
		default:
			return "int"
		}
	}
	all := append(append([]abi.CType{abi.Char}, ints...), floats...)
	for _, from := range all {
		for _, to := range all {
			from, to := from, to
			w := one(from, 1, &abi.SparcV8)
			e := one(to, 1, &abi.X86)
			p, err := NewPlan(w, e)
			sameClass := class(from) == class(to) ||
				(class(from) == "char" && class(to) == "int") ||
				(class(from) == "int" && class(to) == "char")
			if sameClass && err != nil {
				t.Errorf("%v -> %v: rejected: %v", from, to, err)
				continue
			}
			if !sameClass {
				if err == nil {
					t.Errorf("%v -> %v: cross-class conversion accepted", from, to)
				}
				continue
			}
			// Execute with a value representable in both.
			src := native.New(w)
			dst := native.New(e)
			if class(from) == "float" {
				src.MustSetFloat("v", 0, 2.5)
				if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
					t.Fatalf("%v -> %v: %v", from, to, err)
				}
				if got, _ := dst.Float("v", 0); got != 2.5 {
					t.Errorf("%v -> %v: value %v, want 2.5", from, to, got)
				}
			} else {
				src.MustSetInt("v", 0, 21)
				if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
					t.Fatalf("%v -> %v: %v", from, to, err)
				}
				if got, _ := dst.Int("v", 0); got != 21 {
					t.Errorf("%v -> %v: value %v, want 21", from, to, got)
				}
			}
		}
	}
}

// TestSignednessChange documents the C-like semantics of converting a
// signed wire field into an unsigned native field and vice versa: the
// two's-complement bit pattern is extended per the WIRE type's
// signedness, then truncated to the destination width.
func TestSignednessChange(t *testing.T) {
	// Signed -1 (4 bytes) into unsigned 8 bytes: sign-extends, then the
	// unsigned read yields 0xFFFFFFFFFFFFFFFF (as C would).
	w := one(abi.Int, 1, &abi.X86)
	e := one(abi.ULongLong, 1, &abi.X86)
	p, err := NewPlan(w, e)
	if err != nil {
		t.Fatal(err)
	}
	src := native.New(w)
	src.MustSetInt("v", 0, -1)
	dst := native.New(e)
	if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
		t.Fatal(err)
	}
	if got, _ := dst.Int("v", 0); got != -1 { // reads back the full pattern
		t.Errorf("signed -1 -> unsigned 64: pattern %#x", uint64(got))
	}

	// Unsigned 0xFFFFFFFF (4 bytes) into signed 8 bytes: zero-extends.
	w2 := one(abi.UInt, 1, &abi.X86)
	e2 := one(abi.LongLong, 1, &abi.X86)
	p2, err := NewPlan(w2, e2)
	if err != nil {
		t.Fatal(err)
	}
	src2 := native.New(w2)
	src2.MustSetInt("v", 0, -1) // stores 0xFFFFFFFF
	dst2 := native.New(e2)
	if err := NewInterp(p2).Convert(dst2.Buf, src2.Buf); err != nil {
		t.Fatal(err)
	}
	if got, _ := dst2.Int("v", 0); got != 0xFFFFFFFF {
		t.Errorf("unsigned 0xFFFFFFFF -> signed 64 = %d, want %d", got, int64(0xFFFFFFFF))
	}
}

// TestCharToIntConversion: char arrays match integer fields of size 1
// semantics — PBIO treats char as a 1-byte integer for conversion
// purposes, so a char field can feed a wider integer.
func TestCharToIntConversion(t *testing.T) {
	w := one(abi.Char, 1, &abi.SparcV8)
	e := one(abi.Int, 1, &abi.X86)
	p, err := NewPlan(w, e)
	if err != nil {
		t.Fatal(err)
	}
	src := native.New(w)
	src.MustSetInt("v", 0, 65)
	dst := native.New(e)
	if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
		t.Fatal(err)
	}
	if got, _ := dst.Int("v", 0); got != 65 {
		t.Errorf("char 65 -> int = %d", got)
	}
}
