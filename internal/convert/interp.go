package convert

import (
	"fmt"
	"math"
	"time"
)

// Interp is the table-driven interpreted converter: it walks the plan's op
// table for every record, dispatching on kind, size and order per element.
// This deliberately mirrors how MPICH's unpack and the pre-DCG PBIO
// implementation work ("what amounts to a table-driven interpreter",
// §4.3): generality is bought with per-element control overhead, which is
// exactly the overhead the paper's dynamic code generation removes.
type Interp struct {
	plan *Plan
	m    *Metrics // nil: no accounting, no timing
}

// NewInterp returns an interpreted executor for the plan.
func NewInterp(p *Plan) *Interp { return &Interp{plan: p} }

// Plan returns the underlying plan.
func (it *Interp) Plan() *Plan { return it.plan }

// Convert translates one wire record in src into the receiver's native
// layout in dst.  dst must be at least Native.Size bytes and src at least
// Wire.Size bytes.  dst and src may alias the same buffer only when
// plan.InPlace is true.
func (it *Interp) Convert(dst, src []byte) error {
	if it.m != nil {
		start := time.Now()
		err := it.convert(dst, src)
		if err == nil {
			it.m.InterpConverts.Inc()
			it.m.InterpNanos.Observe(time.Since(start).Nanoseconds())
		}
		return err
	}
	return it.convert(dst, src)
}

func (it *Interp) convert(dst, src []byte) error {
	p := it.plan
	if len(src) < p.Wire.Size {
		return fmt.Errorf("convert: source %d bytes, wire format needs %d", len(src), p.Wire.Size)
	}
	if len(dst) < p.Native.Size {
		return fmt.Errorf("convert: destination %d bytes, native format needs %d", len(dst), p.Native.Size)
	}
	if p.NoOp {
		if &dst[0] != &src[0] {
			copy(dst[:p.Native.Size], src[:p.Wire.Size])
		}
		return nil
	}
	return runOps(p, dst, src)
}

// runOps executes the plan's op table; buffers have been size-checked.
func runOps(p *Plan, dst, src []byte) error {
	for i := range p.Ops {
		o := &p.Ops[i]
		switch o.Kind {
		case OpStruct:
			for e := 0; e < o.Count; e++ {
				d := dst[o.DstOff+e*o.DstSize : o.DstOff+(e+1)*o.DstSize]
				s := src[o.SrcOff+e*o.SrcSize : o.SrcOff+(e+1)*o.SrcSize]
				if err := runOps(o.Sub, d, s); err != nil {
					return err
				}
			}
		case OpCopy:
			n := o.SrcSize * o.Count
			copy(dst[o.DstOff:o.DstOff+n], src[o.SrcOff:o.SrcOff+n])
		case OpSwap:
			for e := 0; e < o.Count; e++ {
				s := src[o.SrcOff+e*o.SrcSize:]
				d := dst[o.DstOff+e*o.DstSize:]
				// Read fully, then write: required for in-place runs.
				v := o.SrcOrder.Uint(s, o.SrcSize)
				o.DstOrder.PutUint(d, o.DstSize, v)
			}
		case OpIntCvt:
			for e := 0; e < o.Count; e++ {
				s := src[o.SrcOff+e*o.SrcSize:]
				d := dst[o.DstOff+e*o.DstSize:]
				if o.Signed {
					v := o.SrcOrder.Int(s, o.SrcSize)
					o.DstOrder.PutInt(d, o.DstSize, v)
				} else {
					v := o.SrcOrder.Uint(s, o.SrcSize)
					o.DstOrder.PutUint(d, o.DstSize, v)
				}
			}
		case OpFloatCvt:
			for e := 0; e < o.Count; e++ {
				s := src[o.SrcOff+e*o.SrcSize:]
				d := dst[o.DstOff+e*o.DstSize:]
				var v float64
				if o.SrcSize == 4 {
					v = float64(math.Float32frombits(o.SrcOrder.Uint32(s)))
				} else {
					v = math.Float64frombits(o.SrcOrder.Uint64(s))
				}
				if o.DstSize == 4 {
					o.DstOrder.PutUint32(d, math.Float32bits(float32(v)))
				} else {
					o.DstOrder.PutUint64(d, math.Float64bits(v))
				}
			}
		case OpZero:
			// Whole field is tail; fallthrough to tail zeroing below.
		default:
			return fmt.Errorf("convert: unknown op kind %v", o.Kind)
		}
		if o.TailZero > 0 {
			start := o.DstOff + o.DstSize*o.Count
			if o.Kind == OpZero {
				start = o.DstOff
			}
			zero(dst[start : start+o.TailZero])
		}
	}
	return nil
}

// zero clears b (the compiler recognizes this loop as a memclr).
func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
