package convert

import (
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Metrics instruments the conversion planner and the interpreted
// executor — the paper's measured quantities "conversion plan build
// cost" (amortized once per wire format) and "interpreted conversion
// time" (paid per record on the pre-DCG path).  A nil *Metrics disables
// all accounting, including the time.Now calls, so the uninstrumented
// path pays nothing.
type Metrics struct {
	PlanBuilds     *telemetry.Counter
	PlanBuildNanos *telemetry.Histogram
	InterpConverts *telemetry.Counter
	InterpNanos    *telemetry.Histogram
}

// NewMetrics builds the convert metric set on r (nil registry → nil
// set, which disables instrumentation).
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		PlanBuilds:     r.Counter("pbio_convert_plan_builds_total", "Conversion plans built (once per wire/native format pair)."),
		PlanBuildNanos: r.Histogram("pbio_convert_plan_build_nanos", "Latency of conversion plan construction, nanoseconds."),
		InterpConverts: r.Counter("pbio_convert_interp_conversions_total", "Records converted by the table-driven interpreter."),
		InterpNanos:    r.Histogram("pbio_convert_interp_nanos", "Latency of one interpreted record conversion, nanoseconds."),
	}
}

// NewPlanTimed builds a conversion plan like NewPlan, recording build
// count and latency in m when m is non-nil.
func NewPlanTimed(wireFmt, native *wire.Format, m *Metrics) (*Plan, error) {
	if m == nil {
		return NewPlan(wireFmt, native)
	}
	start := time.Now()
	p, err := NewPlan(wireFmt, native)
	if err == nil {
		m.PlanBuilds.Inc()
		m.PlanBuildNanos.Observe(time.Since(start).Nanoseconds())
	}
	return p, err
}

// SetMetrics attaches telemetry to the interpreter: each Convert is then
// counted and timed.  Nil disables.
func (it *Interp) SetMetrics(m *Metrics) { it.m = m }
