package convert

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/native"
	"repro/internal/wire"
)

func particleSchema(n int) *wire.Schema {
	return &wire.Schema{
		Name: "particles",
		Fields: []wire.FieldSpec{
			{Name: "hdr", Count: 1, Sub: &wire.Schema{
				Name: "header",
				Fields: []wire.FieldSpec{
					{Name: "step", Type: abi.Int, Count: 1},
					{Name: "t", Type: abi.Double, Count: 1},
					{Name: "label", Type: abi.Char, Count: 8},
				},
			}},
			{Name: "count", Type: abi.Int, Count: 1},
			{Name: "p", Count: n, Sub: &wire.Schema{
				Name: "particle",
				Fields: []wire.FieldSpec{
					{Name: "id", Type: abi.Int, Count: 1},
					{Name: "pos", Count: 1, Sub: &wire.Schema{
						Name: "vec3",
						Fields: []wire.FieldSpec{
							{Name: "x", Type: abi.Double, Count: 1},
							{Name: "y", Type: abi.Double, Count: 1},
							{Name: "z", Type: abi.Double, Count: 1},
						},
					}},
					{Name: "charge", Type: abi.Float, Count: 1},
				},
			}},
		},
	}
}

func TestNestedConversionPreservesValues(t *testing.T) {
	pairs := []struct{ from, to abi.Arch }{
		{abi.SparcV8, abi.X86},
		{abi.X86, abi.SparcV8},
		{abi.SparcV9x64, abi.X86},
		{abi.Alpha, abi.MIPSo32},
		{abi.X86, abi.X86},
	}
	for _, pr := range pairs {
		pr := pr
		t.Run(pr.from.Name+"->"+pr.to.Name, func(t *testing.T) {
			src := native.New(wire.MustLayout(particleSchema(5), &pr.from))
			native.FillDeterministic(src, 99)
			p, err := NewPlan(src.Format, wire.MustLayout(particleSchema(5), &pr.to))
			if err != nil {
				t.Fatal(err)
			}
			dst := native.New(p.Native)
			if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
				t.Fatal(err)
			}
			if diff := native.SemanticEqual(src, dst); diff != "" {
				t.Errorf("nested conversion lost data: %s", diff)
			}
		})
	}
}

func TestNestedPlanUsesSubPlans(t *testing.T) {
	w := wire.MustLayout(particleSchema(3), &abi.SparcV8)
	n := wire.MustLayout(particleSchema(3), &abi.X86)
	p, err := NewPlan(w, n)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range p.Ops {
		if p.Ops[i].Kind == OpStruct {
			found = true
			if p.Ops[i].Sub == nil {
				t.Fatal("OpStruct without sub-plan")
			}
		}
	}
	if !found {
		t.Fatalf("heterogeneous nested plan has no struct ops:\n%s", p)
	}
}

func TestNestedHomogeneousDegeneratesToCopy(t *testing.T) {
	// Same arch both sides, but an extra top-level field forces a
	// non-NoOp plan; the nested fields must become plain copies, not
	// struct sub-plans.
	base := particleSchema(3)
	ext := &wire.Schema{Name: base.Name, Fields: append(
		[]wire.FieldSpec{{Name: "extra", Type: abi.Int, Count: 1}}, base.Fields...)}
	w := wire.MustLayout(ext, &abi.X86)
	n := wire.MustLayout(base, &abi.X86)
	p, err := NewPlan(w, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Ops {
		if p.Ops[i].Kind == OpStruct {
			t.Errorf("identical nested layout planned as struct op, want copy:\n%s", p)
		}
	}
}

func TestNestedStructVsBasicMismatchRejected(t *testing.T) {
	w := wire.MustLayout(&wire.Schema{Name: "r", Fields: []wire.FieldSpec{
		{Name: "v", Type: abi.Double, Count: 1},
	}}, &abi.X86)
	n := wire.MustLayout(&wire.Schema{Name: "r", Fields: []wire.FieldSpec{
		{Name: "v", Count: 1, Sub: &wire.Schema{Name: "s", Fields: []wire.FieldSpec{
			{Name: "a", Type: abi.Double, Count: 1},
		}}},
	}}, &abi.X86)
	if _, err := NewPlan(w, n); err == nil {
		t.Error("basic -> struct conversion accepted")
	}
	if _, err := NewPlan(n, w); err == nil {
		t.Error("struct -> basic conversion accepted")
	}
}

func TestNestedCountMismatch(t *testing.T) {
	// Wire has 2 particles, receiver expects 4: extra two zero-filled.
	w := wire.MustLayout(particleSchema(2), &abi.SparcV8)
	n := wire.MustLayout(particleSchema(4), &abi.X86)
	src := native.New(w)
	native.FillDeterministic(src, 7)
	p, err := NewPlan(w, n)
	if err != nil {
		t.Fatal(err)
	}
	dst := native.New(n)
	for i := range dst.Buf {
		dst.Buf[i] = 0xEE
	}
	if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		sa := src.MustSub("p", e)
		sb := dst.MustSub("p", e)
		if diff := native.SemanticEqual(sa, sb); diff != "" {
			t.Errorf("particle %d: %s", e, diff)
		}
	}
	for e := 2; e < 4; e++ {
		sub := dst.MustSub("p", e)
		if v, _ := sub.Float("pos", 0); v != 0 {
			// pos is a struct; Float on it errors — check id instead.
			_ = v
		}
		if id, _ := sub.Int("id", 0); id != 0 {
			t.Errorf("zero-filled particle %d has id %d", e, id)
		}
	}
}

func TestNestedInPlaceIdentity(t *testing.T) {
	// Homogeneous wire with a trailing extra field: every expected field
	// (including nested ones) sits at its own offset -> in-place safe.
	base := particleSchema(2)
	ext := &wire.Schema{Name: base.Name, Fields: append(
		append([]wire.FieldSpec{}, base.Fields...),
		wire.FieldSpec{Name: "extra", Type: abi.Int, Count: 1})}
	w := wire.MustLayout(ext, &abi.X86)
	n := wire.MustLayout(base, &abi.X86)
	p, err := NewPlan(w, n)
	if err != nil {
		t.Fatal(err)
	}
	if !p.InPlace {
		t.Fatalf("appended-field nested plan not in-place safe:\n%s", p)
	}
	src := native.New(w)
	native.FillDeterministic(src, 3)
	ref := src.Clone()
	if err := NewInterp(p).Convert(src.Buf, src.Buf); err != nil {
		t.Fatal(err)
	}
	got, _ := native.View(n, src.Buf)
	if diff := native.SemanticEqual(got, ref); diff != "" {
		t.Errorf("in-place nested conversion corrupted: %s", diff)
	}
}
