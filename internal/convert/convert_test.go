package convert

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/native"
	"repro/internal/wire"
)

func mixedSchema() *wire.Schema {
	return &wire.Schema{
		Name: "mixed",
		Fields: []wire.FieldSpec{
			{Name: "node", Type: abi.Int, Count: 1},
			{Name: "timestamp", Type: abi.Double, Count: 1},
			{Name: "iter", Type: abi.Long, Count: 1},
			{Name: "tag", Type: abi.Char, Count: 16},
			{Name: "residual", Type: abi.Float, Count: 1},
			{Name: "flags", Type: abi.UInt, Count: 1},
			{Name: "values", Type: abi.Double, Count: 8},
		},
	}
}

// convertVia builds a plan, converts src into a fresh native record, and
// returns it.
func convertVia(t *testing.T, src *native.Record, expected *wire.Format) *native.Record {
	t.Helper()
	p, err := NewPlan(src.Format, expected)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	dst := native.New(expected)
	if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
		t.Fatalf("Convert: %v", err)
	}
	return dst
}

func TestHeterogeneousConversionPreservesValues(t *testing.T) {
	// The paper's canonical exchange: sparc (big-endian, 8-aligned
	// doubles) -> x86 (little-endian, 4-aligned doubles).  Byte order
	// AND offsets differ.
	pairs := []struct{ from, to abi.Arch }{
		{abi.SparcV8, abi.X86},
		{abi.X86, abi.SparcV8},
		{abi.SparcV9x64, abi.X86},   // LP64 -> ILP32: long narrows
		{abi.X86, abi.SparcV9x64},   // ILP32 -> LP64: long widens
		{abi.Alpha, abi.MIPSo32},    // LE LP64 -> BE ILP32
		{abi.MIPSn64, abi.I960},     // BE LP64 -> LE ILP32 packed doubles
		{abi.SparcV8, abi.SparcV8},  // homogeneous
		{abi.StrongARM, abi.X86x64}, // LE ILP32 -> LE LP64 (no swap, move+widen)
	}
	for _, pr := range pairs {
		pr := pr
		t.Run(pr.from.Name+"->"+pr.to.Name, func(t *testing.T) {
			src := native.New(wire.MustLayout(mixedSchema(), &pr.from))
			native.FillDeterministic(src, 77)
			dst := convertVia(t, src, wire.MustLayout(mixedSchema(), &pr.to))
			if diff := native.SemanticEqual(src, dst); diff != "" {
				t.Errorf("conversion lost data: %s", diff)
			}
		})
	}
}

func TestNoOpPlanForIdenticalLayouts(t *testing.T) {
	a := wire.MustLayout(mixedSchema(), &abi.SparcV8)
	b := wire.MustLayout(mixedSchema(), &abi.SparcV8)
	p, err := NewPlan(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !p.NoOp || !p.InPlace {
		t.Errorf("identical layouts: NoOp=%v InPlace=%v, want true, true", p.NoOp, p.InPlace)
	}
	// Convert with distinct buffers copies; with the same buffer it is a
	// true no-op.
	src := native.New(a)
	native.FillDeterministic(src, 5)
	dst := native.New(b)
	if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
		t.Fatal(err)
	}
	if diff := native.SemanticEqual(src, dst); diff != "" {
		t.Error(diff)
	}
	if err := NewInterp(p).Convert(src.Buf, src.Buf); err != nil {
		t.Fatal(err)
	}
}

func TestSignedNarrowingAndWidening(t *testing.T) {
	s := &wire.Schema{Name: "l", Fields: []wire.FieldSpec{
		{Name: "x", Type: abi.Long, Count: 1},
		{Name: "u", Type: abi.ULong, Count: 1},
	}}
	wide := wire.MustLayout(s, &abi.SparcV9x64) // 8-byte longs, BE
	narrow := wire.MustLayout(s, &abi.X86)      // 4-byte longs, LE

	// Widening preserves sign.
	src := native.New(narrow)
	src.MustSetInt("x", 0, -42)
	src.MustSetInt("u", 0, 0xFFFF0001)
	dst := convertVia(t, src, wide)
	if v, _ := dst.Int("x", 0); v != -42 {
		t.Errorf("widened signed = %d, want -42", v)
	}
	if v, _ := dst.Int("u", 0); v != 0xFFFF0001 {
		t.Errorf("widened unsigned = %#x, want 0xFFFF0001 (no sign extension)", v)
	}

	// Narrowing truncates like C.
	src2 := native.New(wide)
	src2.MustSetInt("x", 0, -42)
	src2.MustSetInt("u", 0, 0x1_0000_0007)
	dst2 := convertVia(t, src2, narrow)
	if v, _ := dst2.Int("x", 0); v != -42 {
		t.Errorf("narrowed signed = %d, want -42", v)
	}
	if v, _ := dst2.Int("u", 0); v != 7 {
		t.Errorf("narrowed unsigned = %d, want 7", v)
	}
}

func TestFloatWidthConversion(t *testing.T) {
	// A float field on the wire feeding a double field (and vice versa):
	// PBIO supports basic-size changes for floats too.
	sFloat := &wire.Schema{Name: "f", Fields: []wire.FieldSpec{{Name: "v", Type: abi.Float, Count: 3}}}
	sDouble := &wire.Schema{Name: "f", Fields: []wire.FieldSpec{{Name: "v", Type: abi.Double, Count: 3}}}
	src := native.New(wire.MustLayout(sFloat, &abi.SparcV8))
	for i, v := range []float64{1.5, -2.25, 1024} {
		src.MustSetFloat("v", i, v)
	}
	dst := convertVia(t, src, wire.MustLayout(sDouble, &abi.X86))
	for i, want := range []float64{1.5, -2.25, 1024} {
		if got, _ := dst.Float("v", i); got != want {
			t.Errorf("v[%d] = %v, want %v", i, got, want)
		}
	}
	// And back down.
	back := convertVia(t, dst, wire.MustLayout(sFloat, &abi.X86))
	for i, want := range []float64{1.5, -2.25, 1024} {
		if got, _ := back.Float("v", i); got != want {
			t.Errorf("narrowed v[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestUnexpectedFieldIgnored(t *testing.T) {
	// Type extension: wire carries an extra leading field (the paper's
	// worst case).  The receiver's plan skips it; all expected fields
	// convert correctly.
	base := mixedSchema()
	ext := &wire.Schema{Name: base.Name, Fields: append(
		[]wire.FieldSpec{{Name: "new_field", Type: abi.Double, Count: 2}}, base.Fields...)}
	src := native.New(wire.MustLayout(ext, &abi.SparcV8))
	native.FillDeterministic(src, 9)
	p, err := NewPlan(src.Format, wire.MustLayout(base, &abi.X86))
	if err != nil {
		t.Fatal(err)
	}
	if p.Ignored != 1 {
		t.Errorf("Ignored = %d, want 1", p.Ignored)
	}
	dst := native.New(p.Native)
	if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
		t.Fatal(err)
	}
	if diff := native.SemanticEqual(dst, src); diff != "" {
		t.Errorf("expected fields corrupted: %s", diff)
	}
}

func TestMissingFieldZeroFilled(t *testing.T) {
	base := mixedSchema()
	// Wire omits "values" and "flags".
	sub := &wire.Schema{Name: base.Name, Fields: base.Fields[:5]}
	src := native.New(wire.MustLayout(sub, &abi.SparcV8))
	native.FillDeterministic(src, 3)
	p, err := NewPlan(src.Format, wire.MustLayout(base, &abi.X86))
	if err != nil {
		t.Fatal(err)
	}
	if p.Missing != 2 {
		t.Errorf("Missing = %d, want 2", p.Missing)
	}
	dst := native.New(p.Native)
	// Pre-dirty the destination to prove zeroing happens.
	for i := range dst.Buf {
		dst.Buf[i] = 0xAA
	}
	if err := NewInterp(p).Convert(dst.Buf, src.Buf); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Int("flags", 0); v != 0 {
		t.Errorf("missing flags = %d, want 0", v)
	}
	for i := 0; i < 8; i++ {
		if v, _ := dst.Float("values", i); v != 0 {
			t.Errorf("missing values[%d] = %v, want 0", i, v)
		}
	}
	if diff := native.SemanticEqual(src, dst); diff != "" {
		t.Errorf("present fields corrupted: %s", diff)
	}
}

func TestCountMismatchTruncatesAndZeroPads(t *testing.T) {
	s4 := &wire.Schema{Name: "a", Fields: []wire.FieldSpec{{Name: "v", Type: abi.Int, Count: 4}}}
	s8 := &wire.Schema{Name: "a", Fields: []wire.FieldSpec{{Name: "v", Type: abi.Int, Count: 8}}}
	src := native.New(wire.MustLayout(s4, &abi.SparcV8))
	for i := 0; i < 4; i++ {
		src.MustSetInt("v", i, int64(i+1))
	}
	dst := convertVia(t, src, wire.MustLayout(s8, &abi.X86))
	for i := 0; i < 4; i++ {
		if v, _ := dst.Int("v", i); v != int64(i+1) {
			t.Errorf("v[%d] = %d", i, v)
		}
	}
	for i := 4; i < 8; i++ {
		if v, _ := dst.Int("v", i); v != 0 {
			t.Errorf("tail v[%d] = %d, want 0", i, v)
		}
	}
	// Shrinking keeps the prefix.
	src8 := native.New(wire.MustLayout(s8, &abi.X86))
	for i := 0; i < 8; i++ {
		src8.MustSetInt("v", i, int64(10+i))
	}
	dst4 := convertVia(t, src8, wire.MustLayout(s4, &abi.SparcV8))
	for i := 0; i < 4; i++ {
		if v, _ := dst4.Int("v", i); v != int64(10+i) {
			t.Errorf("shrunk v[%d] = %d", i, v)
		}
	}
}

func TestCharArrayLengthMismatch(t *testing.T) {
	s8 := &wire.Schema{Name: "t", Fields: []wire.FieldSpec{{Name: "tag", Type: abi.Char, Count: 8}}}
	s16 := &wire.Schema{Name: "t", Fields: []wire.FieldSpec{{Name: "tag", Type: abi.Char, Count: 16}}}
	src := native.New(wire.MustLayout(s8, &abi.SparcV8))
	src.MustSetString("tag", "abcdefgh") // fills all 8, no NUL
	dst := convertVia(t, src, wire.MustLayout(s16, &abi.X86))
	if got, _ := dst.String("tag"); got != "abcdefgh" {
		t.Errorf("widened tag = %q", got)
	}
}

func TestInPlaceConversion(t *testing.T) {
	// Homogeneous byte order, wire record longer than native (extra
	// leading field): dst offsets all <= src offsets, so the plan is
	// in-place safe — PBIO's "reuse the receive buffer" case.
	base := mixedSchema()
	ext := &wire.Schema{Name: base.Name, Fields: append(
		[]wire.FieldSpec{{Name: "hdr", Type: abi.Double, Count: 1}}, base.Fields...)}
	wireF := wire.MustLayout(ext, &abi.X86)
	natF := wire.MustLayout(base, &abi.X86)
	p, err := NewPlan(wireF, natF)
	if err != nil {
		t.Fatal(err)
	}
	if !p.InPlace {
		t.Fatalf("plan not in-place safe:\n%s", p)
	}
	src := native.New(wireF)
	native.FillDeterministic(src, 21)
	ref := src.Clone()
	// Convert within the same buffer.
	if err := NewInterp(p).Convert(src.Buf, src.Buf); err != nil {
		t.Fatal(err)
	}
	got, err := native.View(natF, src.Buf)
	if err != nil {
		t.Fatal(err)
	}
	if diff := native.SemanticEqual(got, ref); diff != "" {
		t.Errorf("in-place conversion corrupted data: %s", diff)
	}
}

func TestInPlaceUnsafeDetected(t *testing.T) {
	// Wire record SMALLER than native (widening longs) forces dst
	// offsets past src offsets: must not claim in-place safety.
	s := &wire.Schema{Name: "w", Fields: []wire.FieldSpec{
		{Name: "a", Type: abi.Long, Count: 4},
		{Name: "b", Type: abi.Long, Count: 4},
	}}
	wireF := wire.MustLayout(s, &abi.X86)       // 4-byte longs
	natF := wire.MustLayout(s, &abi.SparcV9x64) // 8-byte longs
	p, err := NewPlan(wireF, natF)
	if err != nil {
		t.Fatal(err)
	}
	if p.InPlace {
		t.Error("widening plan incorrectly marked in-place safe")
	}
}

func TestConvertBufferSizeChecks(t *testing.T) {
	f := wire.MustLayout(mixedSchema(), &abi.SparcV8)
	g := wire.MustLayout(mixedSchema(), &abi.X86)
	p, _ := NewPlan(f, g)
	it := NewInterp(p)
	if err := it.Convert(make([]byte, g.Size), make([]byte, f.Size-1)); err == nil {
		t.Error("short source accepted")
	}
	if err := it.Convert(make([]byte, g.Size-1), make([]byte, f.Size)); err == nil {
		t.Error("short destination accepted")
	}
}

func TestNewPlanRejectsInvalidFormats(t *testing.T) {
	good := wire.MustLayout(mixedSchema(), &abi.X86)
	bad := &wire.Format{Name: "", Size: 4}
	if _, err := NewPlan(bad, good); err == nil {
		t.Error("invalid wire format accepted")
	}
	if _, err := NewPlan(good, bad); err == nil {
		t.Error("invalid native format accepted")
	}
}

func TestPlanStringAndOpKindString(t *testing.T) {
	f := wire.MustLayout(mixedSchema(), &abi.SparcV8)
	g := wire.MustLayout(mixedSchema(), &abi.X86)
	p, _ := NewPlan(f, g)
	if p.String() == "" {
		t.Error("empty plan string")
	}
	pn, _ := NewPlan(f, wire.MustLayout(mixedSchema(), &abi.SparcV8))
	if pn.String() == "" {
		t.Error("empty no-op plan string")
	}
	for k := OpCopy; k <= OpZero; k++ {
		if k.String() == "" {
			t.Errorf("OpKind(%d).String() empty", k)
		}
	}
	if OpKind(99).String() == "" {
		t.Error("invalid OpKind String empty")
	}
}
