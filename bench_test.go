package repro_test

// testing.B benchmarks, one (group) per table/figure of the paper's
// evaluation.  `go test -bench=. -benchmem` reports every leg the figures
// are built from; `go run ./cmd/wireperf` composes the same measurements
// into the paper's tables with the modelled network.  Sub-benchmark names
// carry the figure, system and message size:
//
//	BenchmarkFig2_SenderEncode/MPICH/100Kb
//	BenchmarkFig4_Decode/PBIO-DCG/1Kb
//	...

import (
	"testing"

	"repro/internal/bench"
)

// fixtures are shared across benchmarks (building the 100Kb pair is
// expensive enough to matter).
var fixtures = func() []*bench.Ops {
	sizes := bench.Sizes()
	out := make([]*bench.Ops, len(sizes))
	for i, s := range sizes {
		out[i] = bench.MustOps(bench.MustPair(s, bench.MixedSchema))
	}
	return out
}()

func runSized(b *testing.B, fn func(o *bench.Ops) func()) {
	for _, o := range fixtures {
		op := fn(o)
		b.Run(o.Pair.Size.Label, func(b *testing.B) {
			b.SetBytes(int64(o.Pair.X86Fmt.Size))
			op() // warm-up outside the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
	}
}

// BenchmarkFig1_MPIRoundtripLegs measures the four CPU legs of the MPICH
// roundtrip in Figure 1 (the two network legs are modelled, not
// measured; see internal/netsim).
func BenchmarkFig1_MPIRoundtripLegs(b *testing.B) {
	b.Run("sparc-encode", func(b *testing.B) { runSized(b, (*bench.Ops).MPIEncode) })
	b.Run("x86-decode", func(b *testing.B) { runSized(b, (*bench.Ops).MPIDecodeX86) })
	b.Run("x86-encode", func(b *testing.B) { runSized(b, (*bench.Ops).MPIEncodeX86) })
	b.Run("sparc-decode", func(b *testing.B) { runSized(b, (*bench.Ops).MPIDecode) })
}

// BenchmarkFig2_SenderEncode measures sender-side encoding for the four
// systems of Figure 2.
func BenchmarkFig2_SenderEncode(b *testing.B) {
	b.Run("XML", func(b *testing.B) { runSized(b, (*bench.Ops).XMLEncode) })
	b.Run("MPICH", func(b *testing.B) { runSized(b, (*bench.Ops).MPIEncode) })
	b.Run("CORBA", func(b *testing.B) { runSized(b, (*bench.Ops).CORBAEncode) })
	b.Run("PBIO", func(b *testing.B) { runSized(b, (*bench.Ops).PBIOEncode) })
}

// BenchmarkFig3_ReceiverDecode measures receiver-side decoding
// (heterogeneous, interpreted converters) for the four systems of
// Figure 3.
func BenchmarkFig3_ReceiverDecode(b *testing.B) {
	b.Run("XML", func(b *testing.B) { runSized(b, (*bench.Ops).XMLDecode) })
	b.Run("MPICH", func(b *testing.B) { runSized(b, (*bench.Ops).MPIDecode) })
	b.Run("CORBA", func(b *testing.B) { runSized(b, (*bench.Ops).CORBADecode) })
	b.Run("PBIO-interp", func(b *testing.B) { runSized(b, (*bench.Ops).PBIOInterpDecode) })
}

// BenchmarkFig4_Decode compares interpreted and generated conversion
// (Figure 4).
func BenchmarkFig4_Decode(b *testing.B) {
	b.Run("MPICH", func(b *testing.B) { runSized(b, (*bench.Ops).MPIDecode) })
	b.Run("PBIO-interp", func(b *testing.B) { runSized(b, (*bench.Ops).PBIOInterpDecode) })
	b.Run("PBIO-DCG", func(b *testing.B) { runSized(b, (*bench.Ops).PBIODCGDecode) })
}

// BenchmarkFig5_RoundtripLegs measures the PBIO legs of Figure 5's
// roundtrip comparison (the MPICH legs are BenchmarkFig1's).
func BenchmarkFig5_RoundtripLegs(b *testing.B) {
	b.Run("pbio-encode", func(b *testing.B) { runSized(b, (*bench.Ops).PBIOEncode) })
	b.Run("pbio-x86-decode", func(b *testing.B) { runSized(b, (*bench.Ops).PBIODCGDecodeX86) })
	b.Run("pbio-sparc-decode", func(b *testing.B) { runSized(b, (*bench.Ops).PBIODCGDecode) })
}

// BenchmarkFig6_HeterogeneousExtension measures heterogeneous receives
// with and without an unexpected leading field (Figure 6: the mismatch
// costs nothing, conversion already relocates fields).
func BenchmarkFig6_HeterogeneousExtension(b *testing.B) {
	b.Run("matched", func(b *testing.B) { runSized(b, (*bench.Ops).PBIODCGDecode) })
	b.Run("mismatched", func(b *testing.B) {
		for _, s := range bench.Sizes() {
			op := bench.NewHeteroExt(s).HeteroMismatchedDecode()
			b.Run(s.Label, func(b *testing.B) {
				b.SetBytes(int64(s.Target))
				op()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op()
				}
			})
		}
	})
}

// BenchmarkFig7_HomogeneousExtension measures homogeneous receives with
// matching layouts (no conversion) and with the unexpected-field mismatch
// (field relocation ~ memcpy), Figure 7.
func BenchmarkFig7_HomogeneousExtension(b *testing.B) {
	b.Run("matched", func(b *testing.B) { runSized(b, (*bench.Ops).PBIOHomogeneousDecode) })
	b.Run("mismatched", func(b *testing.B) {
		for _, s := range bench.Sizes() {
			op := bench.NewHeteroExt(s).HomoMismatchedDecode()
			b.Run(s.Label, func(b *testing.B) {
				b.SetBytes(int64(s.Target))
				op()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op()
				}
			})
		}
	})
	b.Run("memcpy-ref", func(b *testing.B) { runSized(b, (*bench.Ops).Memcpy) })
}
