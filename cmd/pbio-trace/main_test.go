package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry/tracectx"
)

// writeExport writes one process's span set as a /debug/trace.json
// document to a temp file and returns its path.
func writeExport(t *testing.T, dir, name string, spans []tracectx.Span, dropped int64) string {
	t.Helper()
	var b strings.Builder
	if err := tracectx.WriteChrome(&b, spans, dropped); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func hopSpans() (sender, receiver []tracectx.Span) {
	base := time.Unix(1754400000, 0)
	sender = []tracectx.Span{
		{Trace: 0xabc, ID: 1, Name: tracectx.PhaseSend, Proc: "sender/1",
			Start: base, Dur: 10 * time.Millisecond, Format: "mesh"},
		{Trace: 0xabc, ID: 2, Parent: 1, Name: tracectx.PhaseFrame, Proc: "sender/1",
			Start: base.Add(5 * time.Millisecond), Dur: 5 * time.Millisecond, Format: "mesh"},
	}
	receiver = []tracectx.Span{
		{Trace: 0xabc, ID: 3, Parent: 1, Name: tracectx.PhaseWire, Proc: "receiver/2",
			Start: base.Add(10 * time.Millisecond), Dur: 20 * time.Millisecond, Format: "mesh"},
		{Trace: 0xabc, ID: 4, Parent: 1, Name: tracectx.PhaseConv, Proc: "receiver/2",
			Start: base.Add(30 * time.Millisecond), Dur: 5 * time.Millisecond, Format: "mesh", Path: "dcg"},
	}
	return sender, receiver
}

func TestReadSourceFileAndJoin(t *testing.T) {
	dir := t.TempDir()
	sender, receiver := hopSpans()
	sPath := writeExport(t, dir, "sender.json", sender, 0)
	rPath := writeExport(t, dir, "receiver.json", receiver, 7)

	sSpans, sDrops, err := readSource(sPath)
	if err != nil {
		t.Fatal(err)
	}
	rSpans, rDrops, err := readSource(rPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(sSpans) != 2 || len(rSpans) != 2 {
		t.Fatalf("read %d + %d spans, want 2 + 2", len(sSpans), len(rSpans))
	}
	if sDrops != 0 || rDrops != 7 {
		t.Fatalf("dropped counts %d, %d; want 0, 7", sDrops, rDrops)
	}
	traces := tracectx.Join(sSpans, rSpans)
	if len(traces) != 1 || traces[0].ID != 0xabc || len(traces[0].Spans) != 4 {
		t.Fatalf("join: %+v", traces)
	}
	b := traces[0].Break()
	// Chrome's native unit is the microsecond (as a float), so absolute
	// timestamps round-trip with sub-µs drift.
	if d := b.E2E - 35*time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("E2E = %v, want 35ms ± 1µs", b.E2E)
	}
	if len(b.Procs) != 2 || b.Procs[0] != "sender/1" || b.Procs[1] != "receiver/2" {
		t.Fatalf("hops = %v", b.Procs)
	}
}

func TestReadSourceHTTP(t *testing.T) {
	sender, _ := hopSpans()
	var doc strings.Builder
	if err := tracectx.WriteChrome(&doc, sender, 0); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(doc.String()))
	}))
	defer srv.Close()
	spans, _, err := readSource(srv.URL + "/debug/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Trace != 0xabc {
		t.Fatalf("scraped spans: %+v", spans)
	}
}

func TestReadSourceHTTPError(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	if _, _, err := readSource(srv.URL); err == nil {
		t.Fatal("HTTP 404 accepted")
	}
}

func TestWriteJSONShape(t *testing.T) {
	sender, receiver := hopSpans()
	traces := tracectx.Join(sender, receiver)
	var out strings.Builder
	if err := writeJSON(&out, traces, 2, 4, 3); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Sources int   `json:"sources"`
		Spans   int   `json:"spans"`
		Dropped int64 `json:"dropped_spans"`
		Traces  []struct {
			ID     string   `json:"id"`
			Format string   `json:"format"`
			E2E    int64    `json:"e2e_ns"`
			Attrib int64    `json:"attributed_ns"`
			Hops   []string `json:"hops"`
			Phases []struct {
				Name string `json:"name"`
				Proc string `json:"proc"`
				NS   int64  `json:"ns"`
			} `json:"phases"`
			PhaseSum int64 `json:"phase_sum_ns"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Sources != 2 || doc.Spans != 4 || doc.Dropped != 3 || len(doc.Traces) != 1 {
		t.Fatalf("doc header: %+v", doc)
	}
	tr := doc.Traces[0]
	if tr.ID != "0000000000000abc" || tr.Format != "mesh" {
		t.Fatalf("trace id/format: %+v", tr)
	}
	if tr.E2E != (35 * time.Millisecond).Nanoseconds() {
		t.Fatalf("e2e_ns = %d", tr.E2E)
	}
	if len(tr.Hops) != 2 || len(tr.Phases) != 4 {
		t.Fatalf("hops/phases: %+v", tr)
	}
	var sum int64
	for _, p := range tr.Phases {
		sum += p.NS
	}
	if sum != tr.PhaseSum {
		t.Fatalf("phase_sum_ns %d != recomputed %d", tr.PhaseSum, sum)
	}
}

func TestTraceFormatLabels(t *testing.T) {
	mixed := tracectx.Trace{Spans: []tracectx.Span{{Format: "a"}, {Format: "b"}}}
	if got := traceFormat(&mixed); got != "(mixed formats)" {
		t.Fatalf("mixed: %q", got)
	}
	unknown := tracectx.Trace{Spans: []tracectx.Span{{}}}
	if got := traceFormat(&unknown); got != "(unknown format)" {
		t.Fatalf("unknown: %q", got)
	}
	one := tracectx.Trace{Spans: []tracectx.Span{{Format: "mesh"}, {}}}
	if got := traceFormat(&one); got != `"mesh"` {
		t.Fatalf("single: %q", got)
	}
}
