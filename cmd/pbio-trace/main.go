// Command pbio-trace joins trace spans exported by multiple processes
// into complete cross-hop traces and prints per-hop, per-phase latency
// breakdowns.
//
// Each source is either a file holding Chrome trace-event JSON (as
// served at /debug/trace.json) or an http(s) URL to scrape it from
// live:
//
//	pbio-trace sender.json http://127.0.0.1:9850/debug/trace.json receiver.json
//
// Spans are grouped by the wire-carried trace ID — the same joining a
// tracing backend would do, minus the backend: processes export spans
// recorded against their own clocks, and the tool aligns them on the
// shared wall-clock timeline.  For every trace it reports the
// end-to-end latency (first span start to last span end), the fraction
// attributed to at least one phase, and the per-(phase, process) sums;
// a trailing aggregate averages the phases across all joined traces.
//
// With -json the joined traces are printed as one machine-readable JSON
// document instead (used by the e2e tests and scripting).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry/tracectx"
)

func main() {
	top := flag.Int("top", 0, "print only the N slowest traces (0 = all)")
	jsonOut := flag.Bool("json", false, "emit joined traces as JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: pbio-trace [-top N] [-json] <file-or-url>...\n\n"+
				"Sources are Chrome trace-event JSON files or /debug/trace.json URLs.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var sets [][]tracectx.Span
	var dropped int64
	spanCount := 0
	for _, src := range flag.Args() {
		spans, drops, err := readSource(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbio-trace: %v\n", err)
			os.Exit(1)
		}
		sets = append(sets, spans)
		dropped += drops
		spanCount += len(spans)
	}
	traces := tracectx.Join(sets...)
	if *top > 0 && len(traces) > *top {
		sort.Slice(traces, func(i, j int) bool {
			return traces[i].Break().E2E > traces[j].Break().E2E
		})
		traces = traces[:*top]
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, traces, len(sets), spanCount, dropped); err != nil {
			fmt.Fprintf(os.Stderr, "pbio-trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	printText(traces, len(sets), spanCount, dropped)
}

// readSource loads one span export, from a URL or a file.  The second
// result is the exporter's dropped-span count, carried in the
// document's otherData.
func readSource(src string) ([]tracectx.Span, int64, error) {
	var (
		rc  io.ReadCloser
		err error
	)
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, herr := http.Get(src)
		if herr != nil {
			return nil, 0, fmt.Errorf("%s: %w", src, herr)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, 0, fmt.Errorf("%s: HTTP %s", src, resp.Status)
		}
		rc = resp.Body
	} else {
		rc, err = os.Open(src)
		if err != nil {
			return nil, 0, err
		}
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", src, err)
	}
	spans, err := tracectx.ReadChrome(strings.NewReader(string(data)))
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", src, err)
	}
	// The dropped-span count travels in otherData, which ReadChrome's
	// span view does not expose.
	var meta struct {
		OtherData map[string]string `json:"otherData"`
	}
	var drops int64
	if json.Unmarshal(data, &meta) == nil {
		drops, _ = strconv.ParseInt(meta.OtherData["dropped_spans"], 10, 64)
	}
	return spans, drops, nil
}

func printText(traces []tracectx.Trace, sources, spans int, dropped int64) {
	fmt.Printf("%d source(s), %d span(s), %d trace(s)", sources, spans, len(traces))
	if dropped > 0 {
		fmt.Printf("; %d span(s) dropped before export", dropped)
	}
	fmt.Println()
	type agg struct {
		name, proc string
		total      time.Duration
		n          int
	}
	var order []string
	aggs := make(map[string]*agg)
	for i := range traces {
		tr := &traces[i]
		b := tr.Break()
		frac := 0.0
		if b.E2E > 0 {
			frac = 100 * float64(b.Attributed) / float64(b.E2E)
		}
		fmt.Printf("\ntrace %016x  %s  %d span(s)  e2e %s  attributed %s (%.1f%%)\n",
			tr.ID, traceFormat(tr), len(tr.Spans), b.E2E, b.Attributed, frac)
		fmt.Printf("  hops: %s\n", strings.Join(b.Procs, " -> "))
		for _, p := range b.Phases {
			fmt.Printf("  %-8s %-24s %s\n", p.Name, p.Proc, p.Dur)
			k := p.Name + "\x00" + p.Proc
			a := aggs[k]
			if a == nil {
				a = &agg{name: p.Name, proc: p.Proc}
				aggs[k] = a
				order = append(order, k)
			}
			a.total += p.Dur
			a.n++
		}
	}
	if len(traces) > 1 {
		fmt.Printf("\naggregate over %d traces (mean per phase):\n", len(traces))
		for _, k := range order {
			a := aggs[k]
			fmt.Printf("  %-8s %-24s %s  (n=%d)\n",
				a.name, a.proc, a.total/time.Duration(a.n), a.n)
		}
	}
}

// traceFormat returns the record format the trace's spans carried, when
// they agree on one.
func traceFormat(tr *tracectx.Trace) string {
	name := ""
	for i := range tr.Spans {
		if f := tr.Spans[i].Format; f != "" {
			if name == "" {
				name = f
			} else if name != f {
				return "(mixed formats)"
			}
		}
	}
	if name == "" {
		return "(unknown format)"
	}
	return strconv.Quote(name)
}

// jsonTrace is the machine-readable per-trace report.
type jsonTrace struct {
	ID           string      `json:"id"`
	Format       string      `json:"format,omitempty"`
	Spans        int         `json:"spans"`
	E2ENanos     int64       `json:"e2e_ns"`
	AttribNanos  int64       `json:"attributed_ns"`
	Hops         []string    `json:"hops"`
	Phases       []jsonPhase `json:"phases"`
	PhaseSumNano int64       `json:"phase_sum_ns"`
}

type jsonPhase struct {
	Name  string `json:"name"`
	Proc  string `json:"proc"`
	Nanos int64  `json:"ns"`
}

type jsonDoc struct {
	Sources int         `json:"sources"`
	Spans   int         `json:"spans"`
	Dropped int64       `json:"dropped_spans"`
	Traces  []jsonTrace `json:"traces"`
}

func writeJSON(w io.Writer, traces []tracectx.Trace, sources, spans int, dropped int64) error {
	doc := jsonDoc{Sources: sources, Spans: spans, Dropped: dropped, Traces: []jsonTrace{}}
	for i := range traces {
		tr := &traces[i]
		b := tr.Break()
		jt := jsonTrace{
			ID:          fmt.Sprintf("%016x", tr.ID),
			Spans:       len(tr.Spans),
			E2ENanos:    b.E2E.Nanoseconds(),
			AttribNanos: b.Attributed.Nanoseconds(),
			Hops:        b.Procs,
		}
		if f := traceFormat(tr); strings.HasPrefix(f, `"`) {
			jt.Format, _ = strconv.Unquote(f)
		}
		for _, p := range b.Phases {
			jt.Phases = append(jt.Phases, jsonPhase{Name: p.Name, Proc: p.Proc, Nanos: p.Dur.Nanoseconds()})
			jt.PhaseSumNano += p.Dur.Nanoseconds()
		}
		doc.Traces = append(doc.Traces, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
