// Command pbio-dump reads a PBIO stream (a file or stdin) and pretty-
// prints every record using only the meta-information carried in the
// stream itself — a direct demonstration of the paper's reflection
// support: a generic component operating on data "about which it has no
// a-priori knowledge".
//
// Usage:
//
//	pbio-dump [file]          # dump records (default: stdin)
//	pbio-dump -formats [file] # show only the format descriptions
//	pbio-dump -plan [file]    # show conversion plans + generated code
//	pbio-dump -gen [file]     # generate a demo stream INTO file first
//	pbio-dump -follow [file]  # keep reading as the stream grows (tail -f)
//
// Flight-recorder journals (format "pbio.flight.v1", as served at a
// daemon's /debug/flight or dumped on SIGQUIT) print symbolically: one
// line per event with the kind name instead of its raw enum value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/abi"
	"repro/internal/convert"
	"repro/internal/dcg"
	"repro/internal/flightrec"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pbio"
)

func main() {
	formatsOnly := flag.Bool("formats", false, "print only format descriptions")
	plan := flag.Bool("plan", false, "show the conversion plan and generated code per format")
	gen := flag.Bool("gen", false, "write a demo stream to the named file and exit")
	arch := flag.String("arch", "sparc-v8", "architecture for -gen, and the local native arch for -plan")
	follow := flag.Bool("follow", false, "do not stop at end of stream: poll for appended records (tail -f for PBIO)")
	flag.Parse()

	if *gen {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-gen needs an output file"))
		}
		if err := generate(flag.Arg(0), *arch); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote demo stream to %s (%s layout)\n", flag.Arg(0), *arch)
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	if *plan {
		if err := dumpPlans(in, *arch); err != nil {
			fatal(err)
		}
		return
	}
	if *follow {
		in = &tailReader{r: in, every: 200 * time.Millisecond}
	}
	if err := dump(in, *formatsOnly); err != nil {
		fatal(err)
	}
}

// tailReader turns end-of-file into "wait for more": -follow mode keeps
// a dump attached to a journal another process is still appending to.
// It never returns io.EOF, so the dump loop runs until interrupted.
type tailReader struct {
	r     io.Reader
	every time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 || err != io.EOF {
			return n, err
		}
		time.Sleep(t.every)
	}
}

// dumpPlans shows, for each format in the stream, the conversion PBIO
// would plan against the given local architecture and the virtual-RISC
// program the run-time code generator produces for it.
func dumpPlans(in io.Reader, archName string) error {
	local, err := abi.ByName(archName)
	if err != nil {
		return err
	}
	r := transport.NewReader(in)
	seen := map[string]bool{}
	for {
		m, err := r.ReadMessage()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fp := m.Format.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		fmt.Print(m.Format.String())
		native, err := wire.Layout(m.Format.Schema(), &local)
		if err != nil {
			return err
		}
		p, err := convert.NewPlan(m.Format, native)
		if err != nil {
			return err
		}
		fmt.Println(p.String())
		prog, err := dcg.Compile(p)
		if err != nil {
			return err
		}
		if len(prog.Code()) == 0 {
			fmt.Println("generated code: none (identical layouts, zero-copy receive)")
		} else {
			fmt.Printf("generated code (%d instructions):\n%s", len(prog.Code()), dcg.Disassemble(prog.Code()))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbio-dump:", err)
	os.Exit(1)
}

// dump reads messages and prints them with no prior format knowledge.
func dump(in io.Reader, formatsOnly bool) error {
	ctx, err := pbio.NewContext()
	if err != nil {
		return err
	}
	r := ctx.NewReader(in)
	seen := map[string]bool{}
	n := 0
	for {
		m, err := r.Read()
		if err == io.EOF {
			fmt.Printf("-- %d records --\n", n)
			return nil
		}
		if err != nil {
			return err
		}
		n++
		if !seen[m.FormatName()] {
			seen[m.FormatName()] = true
			fmt.Print(m.DescribeFormat())
		}
		if formatsOnly {
			continue
		}
		printRecord(m)
	}
}

// printRecord decodes via a format built, at run time, from the incoming
// format's own description — pure reflection.
func printRecord(m *pbio.Message) {
	ctx, err := pbio.NewContext()
	if err != nil {
		fatal(err)
	}
	specs := make([]pbio.FieldSpec, 0, len(m.Fields()))
	for _, fi := range m.Fields() {
		specs = append(specs, fi.Spec())
	}
	f, err := ctx.Register(m.FormatName(), specs...)
	if err != nil {
		fatal(err)
	}
	rec, err := m.Decode(f)
	if err != nil {
		fatal(err)
	}
	if m.FormatName() == flightrec.FormatName && printFlight(rec) {
		return
	}
	fmt.Printf("record %q:", m.FormatName())
	printFields(rec, m.Fields())
	fmt.Println()
}

// printFlight renders one flight-recorder event symbolically — kind
// name, UTC timestamp, node and subject — instead of raw field dumps.
// Returns false (caller falls back to the generic printer) if the
// record is missing the core fields, e.g. an evolved future schema.
func printFlight(rec *pbio.Record) bool {
	ts, err1 := rec.Int("ts_nanos", 0)
	kind, err2 := rec.Int("kind", 0)
	if err1 != nil || err2 != nil {
		return false
	}
	node, _ := rec.String("node")
	subject, _ := rec.String("subject")
	trace, _ := rec.Int("trace", 0)
	arg1, _ := rec.Int("arg1", 0)
	arg2, _ := rec.Int("arg2", 0)
	fmt.Printf("flight %s %s %s subject=%q trace=%#x arg1=%d arg2=%d",
		time.Unix(0, ts).UTC().Format("2006-01-02 15:04:05.000000"),
		node, flightrec.KindName(int32(kind)), subject, uint64(trace), arg1, arg2)
	if flightrec.Kind(kind) == flightrec.KindDCGBatchCompile {
		// arg2 packs the fused shape; decode it so the journal shows
		// what the batch fusion pass produced.
		runs, words, steps := flightrec.UnpackBatchShape(arg2)
		fmt.Printf(" (compile=%dns runs=%d fused_words=%d step_fallbacks=%d)",
			arg1, runs, words, steps)
	}
	fmt.Println()
	return true
}

func printFields(rec *pbio.Record, fields []pbio.FieldInfo) {
	for _, fi := range fields {
		fmt.Printf(" %s=", fi.Name)
		switch {
		case fi.Struct:
			for e := 0; e < fi.Count && e < 2; e++ {
				sub, err := rec.Sub(fi.Name, e)
				if err != nil {
					fatal(err)
				}
				fmt.Print("{")
				printFields(sub, fi.Fields)
				fmt.Print(" }")
			}
			if fi.Count > 2 {
				fmt.Printf("...+%d", fi.Count-2)
			}
		case fi.Type == pbio.Char:
			s, _ := rec.String(fi.Name)
			fmt.Printf("%q", s)
		case fi.Type == pbio.Float || fi.Type == pbio.Double:
			printElems(fi.Count, func(i int) {
				v, _ := rec.Float(fi.Name, i)
				fmt.Print(v)
			})
		default:
			printElems(fi.Count, func(i int) {
				v, _ := rec.Int(fi.Name, i)
				fmt.Print(v)
			})
		}
	}
}

func printElems(n int, one func(int)) {
	const maxShown = 4
	if n == 1 {
		one(0)
		return
	}
	fmt.Print("[")
	for i := 0; i < n && i < maxShown; i++ {
		if i > 0 {
			fmt.Print(" ")
		}
		one(i)
	}
	if n > maxShown {
		fmt.Printf(" ...+%d", n-maxShown)
	}
	fmt.Print("]")
}

// generate writes a small demo stream with two formats.
func generate(path, arch string) error {
	ctx, err := pbio.NewContext(pbio.WithArch(arch))
	if err != nil {
		return err
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	w := ctx.NewWriter(out)

	probe, err := ctx.Register("probe",
		pbio.F("step", pbio.Int),
		pbio.F("t", pbio.Double),
		pbio.Array("name", pbio.Char, 12),
		pbio.Array("u", pbio.Double, 6),
		pbio.Struct("extent",
			pbio.F("lo", pbio.Double),
			pbio.F("hi", pbio.Double),
		),
	)
	if err != nil {
		return err
	}
	status, err := ctx.Register("status",
		pbio.F("code", pbio.Int),
		pbio.Array("msg", pbio.Char, 24),
	)
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		r := probe.NewRecord()
		r.MustSetInt("step", 0, int64(i))
		r.MustSetFloat("t", 0, float64(i)*0.05)
		r.MustSetString("name", fmt.Sprintf("probe-%d", i))
		for j := 0; j < 6; j++ {
			r.MustSetFloat("u", j, float64(i*10+j)/4)
		}
		ext := r.MustSub("extent", 0)
		ext.MustSetFloat("lo", 0, -float64(i))
		ext.MustSetFloat("hi", 0, float64(i)+1)
		if err := w.Write(r); err != nil {
			return err
		}
	}
	s := status.NewRecord()
	s.MustSetInt("code", 0, 0)
	s.MustSetString("msg", "simulation done")
	return w.Write(s)
}
