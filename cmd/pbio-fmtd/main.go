// Command pbio-fmtd runs a PBIO format server: a daemon that assigns
// content-addressed global IDs to record formats and serves their
// descriptions back to any component that encounters an unknown ID.
//
// With a format server, PBIO streams (connections or files) carry only an
// 8-byte format reference instead of full meta-information, and format
// identity is shared across every producer and consumer in a deployment:
//
//	pbio-fmtd -listen 127.0.0.1:7847 -stats 30s -metrics-addr 127.0.0.1:9847 &
//	# then, in applications:
//	ctx, _ := pbio.NewContext(pbio.WithFormatServer("127.0.0.1:7847"))
//
// With -metrics-addr the daemon serves /metrics (Prometheus text,
// including pbio_go_* runtime families), /debug/vars (JSON),
// /debug/trace, /debug/pprof/, /debug/flight (the flight-recorder
// journal as a PBIO stream), /healthz (liveness) and /readyz
// (readiness: 503 unless the format listener answers a probe dial).
// Client-side retry/redial storms (the fmtserver client retries
// invisibly with backoff) surface here as conns_total racing ahead of
// the number of deployed clients; -stats logs the same counters
// periodically.  SIGQUIT dumps the flight journal to -flight-dump.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/flightrec"
	"repro/internal/fmtserver"
	"repro/internal/telemetry"
	"repro/internal/telemetry/runtimebridge"
	"repro/internal/telemetry/tracectx"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7847", "address to listen on")
	statsEvery := flag.Duration("stats", 0, "print server stats at this interval (0 = never)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/trace and /debug/pprof on this address (empty = disabled)")
	trace := flag.Bool("trace", false, "record a span per handled request, served at /debug/trace.json on -metrics-addr")
	flightCap := flag.Int("flight", 4096, "flight recorder ring capacity in events (0 = disabled)")
	flightDump := flag.String("flight-dump", "pbio-fmtd.flight.pbio", "write the flight journal here on SIGQUIT")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("pbio-fmtd: %v", err)
	}
	srv := fmtserver.NewServer()
	var tracer *tracectx.Tracer
	if *trace {
		tracer = tracectx.New("pbio-fmtd", 1, 0)
		srv.SetTracer(tracer)
	}
	var rec *flightrec.Recorder
	if *flightCap > 0 {
		rec = flightrec.New("pbio-fmtd", *flightCap)
		srv.SetFlight(rec)
		rec.DumpOnSignal(*flightDump)
	}
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		srv.SetTelemetry(reg)
		tracer.ExportMetrics(reg)
		runtimebridge.Start(reg, 0)
		if rec != nil {
			rec.ExportMetrics(reg)
			reg.Handle("/debug/flight", rec.Handler())
		}
		reg.Handle("/healthz", telemetry.LiveHandler())
		// Ready means the format port itself accepts connections, not
		// just the metrics mux: probe it the way a client would dial.
		reg.Handle("/readyz", telemetry.ReadyHandler(func() error {
			c, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
			if err != nil {
				return fmt.Errorf("format listener %s: %w", ln.Addr(), err)
			}
			c.Close()
			return nil
		}))
		mln, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("pbio-fmtd: %v", err)
		}
		fmt.Printf("pbio-fmtd: metrics on %s\n", mln.Addr())
	}
	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Stats()
				log.Printf("pbio-fmtd: %d conns, %d requests (%d registers, %d lookups, "+
					"%d misses, %d errors), %d formats; a conns/clients ratio above 1 "+
					"means clients are redialing (retry backoff)",
					st.Conns, st.Requests, st.Registers, st.Lookups,
					st.Misses, st.Errors, srv.Len())
			}
		}()
	}
	fmt.Printf("pbio-fmtd: serving formats on %s\n", ln.Addr())
	log.Fatal(srv.Serve(ln))
}
