// Command pbio-fmtd runs a PBIO format server: a daemon that assigns
// content-addressed global IDs to record formats and serves their
// descriptions back to any component that encounters an unknown ID.
//
// With a format server, PBIO streams (connections or files) carry only an
// 8-byte format reference instead of full meta-information, and format
// identity is shared across every producer and consumer in a deployment:
//
//	pbio-fmtd -listen 127.0.0.1:7847 &
//	# then, in applications:
//	ctx, _ := pbio.NewContext(pbio.WithFormatServer("127.0.0.1:7847"))
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"repro/internal/fmtserver"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7847", "address to listen on")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("pbio-fmtd: %v", err)
	}
	fmt.Printf("pbio-fmtd: serving formats on %s\n", ln.Addr())
	srv := fmtserver.NewServer()
	log.Fatal(srv.Serve(ln))
}
