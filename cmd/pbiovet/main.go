// Command pbiovet is the repository's static-analysis suite: a vet tool
// proving PBIO's wire invariants at compile time.
//
// It runs in two modes:
//
//	go vet -vettool=$(which pbiovet) ./...   # as a vet tool
//	pbiovet [packages]                       # standalone (defaults to ./...)
//
// Standalone mode simply re-execs the go command with itself as the vet
// tool, so both modes share one code path — the unit-checker protocol —
// and agree exactly on build tags, test variants and import resolution.
//
// Analyzers (suppress a deliberate finding with a
// `//pbiovet:allow <name> — reason` comment on or above the line):
//
//	tagcheck    pbio struct tags match the rules pbio.RegisterStruct enforces
//	speccheck   literal FieldSpec/Schema declarations are wire-valid
//	endiancheck byte-order arithmetic stays inside the layout layers
//	senterr     sentinel errors are classified with errors.Is, not ==
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis/passes"
	"repro/internal/analysis/unitchecker"
)

func main() {
	// The go command drives the vet protocol with -V=full, -flags, or a
	// vet.cfg argument; anything else is a human asking for a standalone
	// run over package patterns.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" || arg == "-flags" ||
			strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(passes.All...)
		}
	}
	os.Exit(standalone(os.Args[1:]))
}

// standalone re-execs `go vet -vettool=<self> <patterns>`.
func standalone(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbiovet:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "pbiovet:", err)
		return 1
	}
	return 0
}
