// Command pbiovet is the repository's static-analysis suite: a vet tool
// proving PBIO's wire invariants at compile time.
//
// It runs in two modes:
//
//	go vet -vettool=$(which pbiovet) ./...   # as a vet tool
//	pbiovet [flags] [packages]               # standalone (defaults to ./...)
//
// Standalone mode simply re-execs the go command with itself as the vet
// tool, so both modes share one code path — the unit-checker protocol —
// and agree exactly on build tags, test variants and import resolution.
// `pbiovet -run=name,...` restricts the run to the named analyzers;
// `pbiovet -list` (or -help) prints the analyzer registry.
//
// Analyzers (suppress a deliberate finding with a
// `//pbiovet:allow <name> — reason` comment on or above the line):
//
//	tagcheck    pbio struct tags match the rules pbio.RegisterStruct enforces
//	speccheck   literal FieldSpec/Schema declarations are wire-valid
//	endiancheck byte-order arithmetic stays inside the layout layers
//	senterr     sentinel errors are classified with errors.Is, not ==
//	tracecheck  trace spans are finished on every path
//	poolcheck   bufpool buffers are not used after Put, double-Put, or leaked to goroutines
//	lockcheck   no potentially-blocking call runs while a sync.Mutex is held
//	atomiccheck fields accessed with sync/atomic are never accessed plainly
//	alloccheck  //pbio:hotpath functions stay within their declared alloc budget
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis/passes"
	"repro/internal/analysis/unitchecker"
)

func main() {
	// The go command drives the vet protocol with -V=full, -flags, or a
	// vet.cfg argument; anything else is a human asking for a standalone
	// run over package patterns.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" || arg == "-flags" ||
			strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(passes.All...)
		}
	}
	os.Exit(standalone(os.Args[1:]))
}

// listAnalyzers prints the registry: every analyzer's name and the first
// line of its documentation.
func listAnalyzers(w *os.File) {
	fmt.Fprintf(w, "pbiovet checks PBIO's wire, ownership, locking and allocation invariants.\n\n")
	fmt.Fprintf(w, "usage: pbiovet [-run=name,...] [packages]\n\nAnalyzers:\n")
	for _, a := range passes.All {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, doc)
	}
	fmt.Fprintf(w, "\nSuppress a deliberate finding with `//pbiovet:allow <name> — reason`\non or above the flagged line.\n")
}

// standalone re-execs `go vet -vettool=<self> <args>` after handling the
// human-facing flags itself: -list/-help print the registry, and a bad
// -run value fails here with the full analyzer list rather than once per
// package from the re-exec.
func standalone(args []string) int {
	var patterns []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch trimmed := strings.TrimLeft(arg, "-"); {
		case arg == "-list" || arg == "--list" || arg == "-help" || arg == "--help" || arg == "-h":
			listAnalyzers(os.Stdout)
			return 0
		case strings.HasPrefix(trimmed, "run=") || trimmed == "run":
			names := strings.TrimPrefix(trimmed, "run")
			names = strings.TrimPrefix(names, "=")
			if names == "" { // "-run name,..." with a space
				if i+1 >= len(args) {
					fmt.Fprintln(os.Stderr, "pbiovet: -run needs a comma-separated list of analyzers (see pbiovet -list)")
					return 2
				}
				i++
				names = args[i]
			}
			if _, err := unitchecker.Select(passes.All, names); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			patterns = append(patterns, "-run="+names)
		default:
			patterns = append(patterns, arg)
		}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbiovet:", err)
		return 1
	}
	hasPattern := false
	for _, p := range patterns {
		if !strings.HasPrefix(p, "-") {
			hasPattern = true
		}
	}
	if !hasPattern {
		patterns = append(patterns, "./...")
	}
	cmdArgs := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "pbiovet:", err)
		return 1
	}
	return 0
}
