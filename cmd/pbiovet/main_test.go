package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles pbiovet into a temp dir and returns the binary
// path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "pbiovet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/pbiovet")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pbiovet: %v\n%s", err, out)
	}
	return tool
}

// TestSelfRunClean builds pbiovet and runs it as a vet tool over the
// whole module: the tree must stay free of pbiovet diagnostics.  This is
// the acceptance gate for the analyzer suite — a regression either in an
// analyzer (false positive) or in the tree (real finding) fails here.
func TestSelfRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	tool := buildTool(t)
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = moduleRoot(t)
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("pbiovet reported diagnostics over the module:\n%s", out)
	}
}

// TestCrossPackageFactFlow proves facts survive the unitchecker
// protocol: package a's Wait earns a Blocks fact when a is analyzed, the
// fact is serialized into a's vetx file, and analyzing package b — which
// calls a.Wait under a mutex — must read the fact back from the vetx and
// report the convoy.
func TestCrossPackageFactFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets a scratch module")
	}
	tool := buildTool(t)
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module facttest\n\ngo 1.21\n")
	write("a/a.go", `package a

// Wait blocks on the channel: lockcheck must export a Blocks fact.
func Wait(ch chan int) int {
	return <-ch
}
`)
	write("b/b.go", `package b

import (
	"sync"

	"facttest/a"
)

type T struct {
	mu sync.Mutex
	ch chan int
}

func (t *T) Bad() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return a.Wait(t.ch)
}
`)
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("expected a lockcheck diagnostic in package b, got none:\n%s", out)
	}
	want := "call to Wait (may block) while holding t.mu"
	if !strings.Contains(string(out), want) {
		t.Fatalf("diagnostic missing %q — the Blocks fact did not flow from a to b:\n%s", want, out)
	}
}

// TestListAndUnknownAnalyzer checks the human-facing CLI: -list prints
// every analyzer with its one-line doc, and a typo in -run fails with
// the valid names rather than silently checking nothing.
func TestListAndUnknownAnalyzer(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	tool := buildTool(t)

	out, err := exec.Command(tool, "-list").Output()
	if err != nil {
		t.Fatalf("pbiovet -list: %v", err)
	}
	for _, name := range []string{"tagcheck", "speccheck", "endiancheck", "senterr",
		"tracecheck", "poolcheck", "lockcheck", "atomiccheck", "alloccheck"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("pbiovet -list does not mention %s:\n%s", name, out)
		}
	}

	bad := exec.Command(tool, "-run=nosuch", "./cmd/pbiovet")
	bad.Dir = moduleRoot(t)
	msg, err := bad.CombinedOutput()
	if err == nil {
		t.Fatalf("pbiovet -run=nosuch succeeded; want a loud failure:\n%s", msg)
	}
	if !strings.Contains(string(msg), `unknown analyzer "nosuch"`) ||
		!strings.Contains(string(msg), "valid analyzers:") {
		t.Errorf("unknown-analyzer error does not name the problem or the valid set:\n%s", msg)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestVetProtocolProbe checks the version handshake the go command uses
// to accept a vet tool: `pbiovet -V=full` must print a single line in
// the `name version ... buildID=...` shape.
func TestVetProtocolProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "pbiovet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/pbiovet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pbiovet: %v\n%s", err, out)
	}
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("pbiovet -V=full: %v", err)
	}
	s := strings.TrimSpace(string(out))
	if !strings.Contains(s, "pbiovet version ") || !strings.Contains(s, "buildID=") {
		t.Errorf("unexpected -V=full output: %q", s)
	}
}
