package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfRunClean builds pbiovet and runs it as a vet tool over the
// whole module: the tree must stay free of pbiovet diagnostics.  This is
// the acceptance gate for the analyzer suite — a regression either in an
// analyzer (false positive) or in the tree (real finding) fails here.
func TestSelfRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "pbiovet")

	build := exec.Command("go", "build", "-o", tool, "./cmd/pbiovet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pbiovet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("pbiovet reported diagnostics over the module:\n%s", out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestVetProtocolProbe checks the version handshake the go command uses
// to accept a vet tool: `pbiovet -V=full` must print a single line in
// the `name version ... buildID=...` shape.
func TestVetProtocolProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "pbiovet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/pbiovet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pbiovet: %v\n%s", err, out)
	}
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("pbiovet -V=full: %v", err)
	}
	s := strings.TrimSpace(string(out))
	if !strings.Contains(s, "pbiovet version ") || !strings.Contains(s, "buildID=") {
		t.Errorf("unexpected -V=full output: %q", s)
	}
}
