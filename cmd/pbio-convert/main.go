// Command pbio-convert rewrites a PBIO stream: records are decoded using
// the in-band meta-information and re-emitted either as a PBIO stream in
// another (simulated) architecture's native layout, or as XML text.
//
// It demonstrates the full library pipeline offline: reflection over
// unknown formats, run-time layout for a chosen target architecture,
// generated conversion, and re-emission.
//
// Usage:
//
//	pbio-convert -to-arch x86   in.pbio out.pbio   # re-layout natively
//	pbio-convert -to-xml        in.pbio out.xml    # to the XML wire format
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/abi"
	"repro/internal/convert"
	"repro/internal/dcg"
	"repro/internal/native"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/xmlwire"
)

func main() {
	toArch := flag.String("to-arch", "", "re-emit as a PBIO stream in this architecture's layout")
	toXML := flag.Bool("to-xml", false, "re-emit as XML text")
	flag.Parse()
	if (*toArch == "") == !*toXML {
		fatal(fmt.Errorf("exactly one of -to-arch or -to-xml is required"))
	}
	if flag.NArg() != 2 {
		fatal(fmt.Errorf("usage: pbio-convert [-to-arch NAME | -to-xml] IN OUT"))
	}

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer in.Close()
	out, err := os.Create(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	bw := bufio.NewWriter(out)

	var n int
	if *toXML {
		n, err = convertToXML(bufio.NewReader(in), bw)
	} else {
		n, err = convertToArch(bufio.NewReader(in), bw, *toArch)
	}
	if err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	if err := out.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("converted %d records\n", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbio-convert:", err)
	os.Exit(1)
}

// convertToArch re-lays-out every record for the target architecture and
// writes a fresh PBIO stream.
func convertToArch(in io.Reader, out io.Writer, archName string) (int, error) {
	arch, err := abi.ByName(archName)
	if err != nil {
		return 0, err
	}
	r := transport.NewReader(in)
	w := transport.NewWriter(out)
	// Conversion machinery per incoming format, built on first sight.
	type pipeline struct {
		target *wire.Format
		prog   *dcg.Program
		dst    *native.Record
	}
	pipes := map[string]*pipeline{}
	n := 0
	for {
		m, err := r.ReadMessage()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		fp := m.Format.Fingerprint()
		p, ok := pipes[fp]
		if !ok {
			target, err := wire.Layout(m.Format.Schema(), &arch)
			if err != nil {
				return n, err
			}
			plan, err := convert.NewPlan(m.Format, target)
			if err != nil {
				return n, err
			}
			prog, err := dcg.Compile(plan)
			if err != nil {
				return n, err
			}
			p = &pipeline{target: target, prog: prog, dst: native.New(target)}
			pipes[fp] = p
		}
		if err := p.prog.Convert(p.dst.Buf, m.Data); err != nil {
			return n, err
		}
		if err := w.WriteRecord(p.target, p.dst.Buf); err != nil {
			return n, err
		}
		n++
	}
}

// convertToXML writes every record as an XML document, one per line.
func convertToXML(in io.Reader, out io.Writer) (int, error) {
	r := transport.NewReader(in)
	e := xmlwire.NewEncoder(nil)
	n := 0
	for {
		m, err := r.ReadMessage()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		rec, err := native.View(m.Format, m.Data)
		if err != nil {
			return n, err
		}
		e.Reset()
		if err := e.EncodeRecord(rec); err != nil {
			return n, err
		}
		if _, err := out.Write(e.Bytes()); err != nil {
			return n, err
		}
		if _, err := io.WriteString(out, "\n"); err != nil {
			return n, err
		}
		n++
	}
}
