package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/meshmon"
	"repro/internal/relay"
	"repro/pbio"
)

// buildBins compiles pbio-mon and pbio-relay once per test run.
var (
	buildOnce        sync.Once
	monBin, relayBin string
	buildErr         error
)

func buildBins(t *testing.T) (mon, relay string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pbio-mon-test")
		if err != nil {
			buildErr = err
			return
		}
		monBin = filepath.Join(dir, "pbio-mon")
		relayBin = filepath.Join(dir, "pbio-relay")
		for bin, pkg := range map[string]string{monBin: ".", relayBin: "repro/cmd/pbio-relay"} {
			cmd := exec.Command("go", "build", "-o", bin, pkg)
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				buildErr = err
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("go build: %v", buildErr)
	}
	return monBin, relayBin
}

// relayProc is a running pbio-relay child with its announced addresses.
type relayProc struct {
	metricsAddr, prodAddr, consAddr string
}

// startRelay launches pbio-relay on ephemeral ports and parses the
// announce lines off stdout.
func startRelay(t *testing.T, bin string, extra ...string) *relayProc {
	t.Helper()
	args := append([]string{
		"-producers", "127.0.0.1:0",
		"-consumers", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	p := &relayProc{}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for p.metricsAddr == "" || p.prodAddr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("pbio-relay exited before announcing its addresses")
			}
			if rest, ok := strings.CutPrefix(line, "pbio-relay: metrics on "); ok {
				p.metricsAddr = strings.TrimSpace(rest)
			}
			if rest, ok := strings.CutPrefix(line, "pbio-relay: producers on "); ok {
				parts := strings.Split(rest, ", consumers on ")
				if len(parts) != 2 {
					t.Fatalf("unexpected announce line: %q", line)
				}
				p.prodAddr, p.consAddr = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			}
		case <-deadline:
			t.Fatal("timed out waiting for pbio-relay to announce its addresses")
		}
	}
	go func() {
		for range lines {
		}
	}()
	return p
}

// httpStatus GETs a path on a daemon's metrics listener.
func httpStatus(t *testing.T, addr, path string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", addr, path, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestMonEndToEnd is the pbio-mon smoke test against real binaries: a
// 2-relay tree (root + leaf attached by -uplink, each with -node-id),
// traffic pushed through it, then the monitor pointed at EITHER hop must
// map both, name them, carry the per-format books, and exit 0.  The
// health probes ride the same daemons: /healthz always answers, the
// leaf's /readyz flips to 200 once its uplink attaches.  When
// $MESH_TOPOLOGY is set the crawled JSON is written there (the CI
// artifact).
func TestMonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs child processes")
	}
	mon, relayExe := buildBins(t)
	root := startRelay(t, relayExe, "-node-id", "root")
	leaf := startRelay(t, relayExe, "-node-id", "leaf",
		"-uplink", root.consAddr, "-queue", "512", "-queue-policy", "block")

	// Liveness answers immediately; the leaf's readiness flips once the
	// uplink attaches (poll — the dial is asynchronous).
	for _, p := range []*relayProc{root, leaf} {
		if got := httpStatus(t, p.metricsAddr, "/healthz"); got != http.StatusOK {
			t.Fatalf("/healthz = %d", got)
		}
	}
	waitUntil(t, "leaf /readyz", func() bool {
		return httpStatus(t, leaf.metricsAddr, "/readyz") == http.StatusOK
	})

	// Push records root → leaf so the per-format accounting has a row.
	const records = 5
	pctx, err := pbio.NewContext(pbio.WithArch("sparc-v8"))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pctx.Register("mon_rec", pbio.F("v", pbio.Int))
	if err != nil {
		t.Fatal(err)
	}
	consConn, err := net.Dial("tcp", leaf.consAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer consConn.Close()
	prodConn, err := net.Dial("tcp", root.prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer prodConn.Close()
	w := pctx.NewWriter(prodConn)
	rec := pf.NewRecord()
	for i := 0; i < records; i++ {
		rec.MustSetInt("v", 0, int64(i))
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	cctx, err := pbio.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cctx.Register("mon_rec", pbio.F("v", pbio.Int)); err != nil {
		t.Fatal(err)
	}
	r := cctx.NewReader(consConn)
	for i := 0; i < records; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatalf("leaf consumer read %d: %v", i, err)
		}
	}

	// Let the books settle before invoking the one-shot CLI: both hops
	// crawlable with the root's mon_rec row at the produced count.
	waitUntil(t, "both hops crawlable with settled accounting", func() bool {
		topo, err := meshmon.Crawl(root.metricsAddr, nil)
		if err != nil || len(topo.Nodes) != 2 {
			return false
		}
		n := topo.Nodes[root.metricsAddr]
		if n == nil || n.Err != "" {
			return false
		}
		for _, f := range n.Info.Formats {
			if f.Name == "mon_rec" && f.Records == records {
				return true
			}
		}
		return false
	})

	// The monitor from either entry point: both hops, named, exit 0.
	for _, start := range []string{root.metricsAddr, leaf.metricsAddr} {
		out, err := exec.Command(mon, "-json", start).Output()
		if err != nil {
			t.Fatalf("pbio-mon -json %s: %v (stderr in test log)", start, err)
		}
		var topo meshmon.Topology
		if err := json.Unmarshal(out, &topo); err != nil {
			t.Fatalf("pbio-mon -json output: %v\n%s", err, out)
		}
		if len(topo.Nodes) != 2 {
			t.Fatalf("pbio-mon from %s mapped %d hops, want 2:\n%s", start, len(topo.Nodes), out)
		}
		ids := map[string]bool{}
		for _, n := range topo.Nodes {
			ids[n.ID()] = true
		}
		if !ids["root"] || !ids["leaf"] {
			t.Errorf("pbio-mon from %s mapped %v, want root and leaf", start, ids)
		}
		if len(topo.Roots) != 1 || topo.Roots[0] != root.metricsAddr {
			t.Errorf("pbio-mon from %s: roots = %v, want [%s]", start, topo.Roots, root.metricsAddr)
		}
		if start == root.metricsAddr {
			if path := os.Getenv("MESH_TOPOLOGY"); path != "" {
				if err := os.WriteFile(path, out, 0o644); err != nil {
					t.Errorf("MESH_TOPOLOGY: %v", err)
				}
			}
		}
	}

	// The human rendering names both hops and the format too.
	out, err := exec.Command(mon, root.metricsAddr).Output()
	if err != nil {
		t.Fatalf("pbio-mon %s: %v", root.metricsAddr, err)
	}
	for _, want := range []string{"root (", "leaf (", "mon_rec", "per-hop:"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("pbio-mon text output lacks %q:\n%s", want, out)
		}
	}
}

// TestMonExitCodes: a healthy mesh exits 0 (covered above), an
// unreachable start exits 2, and a firing alert rule exits 1 — the CI
// gate contract.
func TestMonExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs child processes")
	}
	mon, relayExe := buildBins(t)

	if err := exec.Command(mon, "127.0.0.1:1").Run(); exitCode(err) != 2 {
		t.Errorf("unreachable start: exit %d, want 2", exitCode(err))
	}

	// A relay whose -uplink never attaches: /readyz stays 503, and the
	// stranded hop still crawls (it is its own one-node mesh).
	p := startRelay(t, relayExe, "-node-id", "stranded", "-uplink", "127.0.0.1:1")
	if got := httpStatus(t, p.metricsAddr, "/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("unattached uplink /readyz = %d, want 503", got)
	}
	if got := httpStatus(t, p.metricsAddr, "/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", got)
	}

	// -queue-frac 0 makes every consumer a deep-queue alert; with no
	// consumers the mesh is healthy and the gate passes.
	if err := exec.Command(mon, "-queue-frac", "0", p.metricsAddr).Run(); exitCode(err) != 0 {
		t.Errorf("healthy one-hop mesh: exit %d, want 0", exitCode(err))
	}

	// A firing rule exits 1: serve a hand-built unhealthy hop (a stalled
	// consumer) and point the monitor at it.
	sick := relay.MeshInfo{Node: relay.MeshNodeInfo{ID: "sick"}}
	sick.Consumers = []relay.MeshConsumerInfo{{Remote: "slow:1", QueueDepth: 9, QueueCap: 16, Stalled: true}}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(sick)
	}))
	defer srv.Close()
	out, err := exec.Command(mon, strings.TrimPrefix(srv.URL, "http://")).CombinedOutput()
	if exitCode(err) != 1 {
		t.Errorf("stalled consumer: exit %d, want 1\n%s", exitCode(err), out)
	}
	if !bytes.Contains(out, []byte("stalled-consumer")) {
		t.Errorf("no stalled-consumer alert in output:\n%s", out)
	}

	// -no-alerts turns the same crawl back into exit 0.
	if err := exec.Command(mon, "-no-alerts", strings.TrimPrefix(srv.URL, "http://")).Run(); exitCode(err) != 0 {
		t.Errorf("-no-alerts: exit %d, want 0", exitCode(err))
	}
}

// waitUntil polls cond with a 15-second deadline.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// exitCode unwraps an exec error's status (0 when err is nil, -1 when
// the process never ran).
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}
