// Command pbio-mon discovers and monitors a PBIO relay mesh.  Pointed
// at any hop's -metrics-addr, it crawls /debug/mesh links in both
// directions — uplink identities toward the root, downstream identities
// toward the leaves — until the whole tree is mapped, then renders the
// topology with per-hop and per-format accounting.
//
// Usage:
//
//	pbio-mon 127.0.0.1:9850                  # crawl once, print the tree
//	pbio-mon -json 127.0.0.1:9850            # the same as one JSON document
//	pbio-mon -watch 5s 127.0.0.1:9851        # re-crawl and print rates
//	pbio-mon -watch 2s -count 10 ...         # bounded watch, for scripts
//	pbio-mon -flight 127.0.0.1:9850          # merge every hop's flight journal
//
// -flight crawls the topology, fetches each hop's /debug/flight
// journal, and renders the merged mesh-wide timeline sorted by event
// time; trace IDs that appear in more than one hop's journal are
// cross-linked in the xhop column.
//
// Alert rules (deep queue, stalled consumer, drops, checksum failures,
// unreachable hop, GC-pause p99, goroutine growth) are evaluated on
// every crawl; if any fire, pbio-mon prints them and exits 1, making it
// usable as a CI gate:
//
//	pbio-mon -queue-frac 0.5 127.0.0.1:9850 || echo "mesh unhealthy"
//
// Exit status: 0 healthy, 1 alerts fired, 2 usage or crawl error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/meshmon"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "print the crawled topology as JSON instead of text")
	watch := flag.Duration("watch", 0, "re-crawl at this interval, printing scrape-to-scrape rates (0 = crawl once)")
	count := flag.Int("count", 0, "with -watch: stop after this many re-crawls (0 = run until interrupted)")
	queueFrac := flag.Float64("queue-frac", 0.8, "deep-queue alert threshold: consumer queue depth/capacity fraction")
	gcPauseMax := flag.Duration("gc-pause-max", 100*time.Millisecond, "gc-pause alert threshold: a hop's GC pause p99 at or above this fires (negative = disabled)")
	maxGoroutines := flag.Int64("max-goroutines", 10000, "goroutine-growth alert threshold: live goroutines on one hop (negative = disabled)")
	noAlerts := flag.Bool("no-alerts", false, "skip alert evaluation (always exit 0 unless the crawl fails)")
	flight := flag.Bool("flight", false, "fetch every hop's /debug/flight journal and print the merged mesh-wide event timeline")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pbio-mon [flags] <hop mesh address (host:port of its -metrics-addr)>")
		flag.PrintDefaults()
		return 2
	}
	start := flag.Arg(0)
	cfg := meshmon.AlertConfig{
		DeepQueueFrac: *queueFrac,
		GCPauseP99Max: *gcPauseMax,
		MaxGoroutines: *maxGoroutines,
	}

	if *flight {
		return runFlight(start, *jsonOut)
	}

	topo, err := meshmon.Crawl(start, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbio-mon: %v\n", err)
		return 2
	}
	if err := render(topo, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "pbio-mon: %v\n", err)
		return 2
	}
	failed := reportAlerts(topo, cfg, *noAlerts)

	if *watch > 0 {
		for i := 0; *count == 0 || i < *count; i++ {
			time.Sleep(*watch)
			cur, err := meshmon.Crawl(start, nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pbio-mon: %v\n", err)
				return 2
			}
			fmt.Println()
			if *jsonOut {
				if err := cur.WriteJSON(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "pbio-mon: %v\n", err)
					return 2
				}
			} else if err := meshmon.WriteRates(os.Stdout, meshmon.DiffTopologies(topo, cur)); err != nil {
				fmt.Fprintf(os.Stderr, "pbio-mon: %v\n", err)
				return 2
			}
			failed = reportAlerts(cur, cfg, *noAlerts) || failed
			topo = cur
		}
	}
	if failed {
		return 1
	}
	return 0
}

// runFlight crawls the mesh, fetches every hop's flight journal, and
// prints the merged timeline (text table, or the per-hop journals as
// JSON with -json).  Exit 2 only when the crawl itself fails;
// individual hops with the recorder disabled render as comments.
func runFlight(start string, jsonOut bool) int {
	topo, err := meshmon.Crawl(start, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbio-mon: %v\n", err)
		return 2
	}
	journals := topo.FetchFlight(nil)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(journals); err != nil {
			fmt.Fprintf(os.Stderr, "pbio-mon: %v\n", err)
			return 2
		}
		return 0
	}
	if err := meshmon.WriteFlight(os.Stdout, journals); err != nil {
		fmt.Fprintf(os.Stderr, "pbio-mon: %v\n", err)
		return 2
	}
	return 0
}

// render prints one crawl in the selected form.
func render(t *meshmon.Topology, jsonOut bool) error {
	if jsonOut {
		return t.WriteJSON(os.Stdout)
	}
	return t.WriteText(os.Stdout)
}

// reportAlerts evaluates and prints alerts, reporting whether any fired.
func reportAlerts(t *meshmon.Topology, cfg meshmon.AlertConfig, skip bool) bool {
	if skip {
		return false
	}
	alerts := t.Alerts(cfg)
	for _, a := range alerts {
		fmt.Fprintf(os.Stderr, "ALERT %s\n", a)
	}
	return len(alerts) > 0
}
