// Command wireperf regenerates the evaluation tables of "Efficient Wire
// Formats for High Performance Computing" (SC 2000): Figures 1-7 and the
// headline claims, using the mixed-field workload at the paper's four
// message sizes.
//
// Usage:
//
//	wireperf            # run everything
//	wireperf -fig 4     # one figure
//	wireperf -claims    # headline ratios only
//	wireperf -sizes     # show the workload sizes and layouts
//	wireperf -telemetry # live pbio exchange, print telemetry JSON
//	wireperf -trace     # traced exchange, per-phase latency at each size
//	wireperf -batch 64  # batched vs per-record framing throughput
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/abi"
	"repro/internal/bench"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracectx"
	"repro/internal/wire"
	"repro/pbio"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (1-7); 0 runs all")
	claims := flag.Bool("claims", false, "compute the headline claims only")
	sizes := flag.Bool("sizes", false, "print the workload sizes and record layouts")
	gencost := flag.Bool("gencost", false, "DCG generation cost vs per-record saving")
	nested := flag.Bool("nested", false, "nested (array-of-structs) vs flat decode costs")
	homo := flag.Bool("homo", false, "homogeneous-exchange decode comparison")
	wires := flag.Bool("wire", false, "wire bytes per record across systems")
	xmlrt := flag.Bool("xmlrt", false, "the roundtrip Figure 5 omitted: XML vs PBIO")
	pairs := flag.Bool("pairs", false, "conversion cost across architecture pairs")
	live := flag.Bool("live", false, "actual roundtrips over TCP loopback (no model)")
	telem := flag.Bool("telemetry", false, "run a pbio exchange in all three receive regimes and print the telemetry snapshot (conversion-path breakdown per format) as JSON")
	traced := flag.Bool("trace", false, "run a fully-sampled traced exchange at the paper's four message sizes and print the mean per-phase latency breakdown")
	traceOut := flag.String("trace-out", "", "with -trace: also write every recorded span as Chrome trace-event JSON (Perfetto-loadable) to this file")
	batch := flag.Int("batch", 0, "measure batched vs per-record framing over TCP loopback, coalescing up to N records per frame")
	flag.Parse()

	switch {
	case *batch != 0:
		if err := batchRun(os.Stdout, *batch); err != nil {
			fmt.Fprintf(os.Stderr, "wireperf: %v\n", err)
			os.Exit(1)
		}
		return
	case *telem:
		if err := telemetryRun(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "wireperf: %v\n", err)
			os.Exit(1)
		}
		return
	case *traced:
		if err := traceRun(os.Stdout, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "wireperf: %v\n", err)
			os.Exit(1)
		}
		return
	case *sizes:
		printSizes()
		return
	case *wires:
		bench.WireSizes().Fprint(os.Stdout)
		return
	case *gencost:
		bench.GenCost().Fprint(os.Stdout)
		return
	case *nested:
		bench.Nested().Fprint(os.Stdout)
		return
	case *homo:
		bench.Homo().Fprint(os.Stdout)
		return
	case *xmlrt:
		bench.XMLRoundTrip().Fprint(os.Stdout)
		return
	case *pairs:
		bench.Pairs().Fprint(os.Stdout)
		return
	case *live:
		bench.LiveRoundTrip().Fprint(os.Stdout)
		return
	}

	figures := map[int]func() *bench.Table{
		1: bench.Fig1, 2: bench.Fig2, 3: bench.Fig3, 4: bench.Fig4,
		5: bench.Fig5, 6: bench.Fig6, 7: bench.Fig7,
	}

	switch {
	case *claims:
		bench.Claims().Fprint(os.Stdout)
	case *fig != 0:
		fn, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "wireperf: no figure %d (have 1-7)\n", *fig)
			os.Exit(2)
		}
		fn().Fprint(os.Stdout)
	default:
		for i := 1; i <= 7; i++ {
			figures[i]().Fprint(os.Stdout)
		}
		bench.Claims().Fprint(os.Stdout)
	}
}

func printSizes() {
	t := &bench.Table{
		Title:  "Workload: mixed-field record (paper section 4.1)",
		Header: []string{"size", "values[]", "sparc bytes", "x86 bytes", "XDR bytes"},
	}
	for _, s := range bench.Sizes() {
		p := bench.MustPair(s, bench.MixedSchema)
		o := bench.MustOps(p)
		t.AddRow(s.Label,
			fmt.Sprint(s.N),
			fmt.Sprint(p.SparcFmt.Size),
			fmt.Sprint(p.X86Fmt.Size),
			fmt.Sprint(o.MPIPackedSize()))
	}
	t.Fprint(os.Stdout)

	fmt.Println("\nRecord layouts at 100b:")
	s := bench.Sizes()[0]
	for _, a := range []abi.Arch{abi.SparcV8, abi.X86} {
		a := a
		f := wire.MustLayout(bench.MixedSchema(s.N), &a)
		fmt.Print(f.String())
	}
}

// telemetryIters is the number of records exchanged per regime in the
// -telemetry run.
const telemetryIters = 64

// telemetryRun performs a live pbio exchange in each of the paper's
// three receive regimes — zero-copy (homogeneous View), interpreted
// conversion, and DCG-generated conversion — with a telemetry registry
// attached, then prints the registry snapshot as JSON.  The
// conversion_paths section is the ground truth for experiments: it
// shows which regime actually executed, per format, rather than which
// one was requested.
func telemetryRun(w io.Writer) error {
	reg := telemetry.NewRegistry()

	mixed := []pbio.FieldSpec{
		pbio.F("node", pbio.Int),
		pbio.F("timestamp", pbio.Double),
		pbio.Array("values", pbio.Double, 64),
	}

	// Regime 1: homogeneous exchange, zero-copy View on the receiver.
	if err := exchange(reg, "x86-64", "x86-64", pbio.Generated, mixed, true); err != nil {
		return fmt.Errorf("zero-copy regime: %w", err)
	}
	// Regime 2: heterogeneous exchange, interpreted conversion.
	if err := exchange(reg, "sparc-v8", "x86-64", pbio.Interpreted, mixed, false); err != nil {
		return fmt.Errorf("interpreted regime: %w", err)
	}
	// Regime 3: heterogeneous exchange, DCG-generated conversion.
	if err := exchange(reg, "sparc-v8", "x86-64", pbio.Generated, mixed, false); err != nil {
		return fmt.Errorf("dcg regime: %w", err)
	}

	// conversion_paths: format -> path -> decode count, distilled from
	// the pbio_decodes_total family.
	paths := make(map[string]map[string]int64)
	snapshot := reg.Snapshot()
	for _, m := range snapshot {
		if m.Name != "pbio_decodes_total" {
			continue
		}
		for _, s := range m.Series {
			f, p := s.Labels["format"], s.Labels["path"]
			if paths[f] == nil {
				paths[f] = make(map[string]int64)
			}
			paths[f][p] += s.Value
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Iters           int                         `json:"records_per_regime"`
		ConversionPaths map[string]map[string]int64 `json:"conversion_paths"`
		Metrics         []telemetry.MetricSnapshot  `json:"metrics"`
	}{telemetryIters, paths, snapshot})
}

// traceIters is the number of records exchanged per size in the -trace
// run; every one is sampled, so each contributes a full trace.
const traceIters = 32

// spanDump collects every span recorded during a -trace run for the
// optional -trace-out Chrome JSON export.
type spanDump []tracectx.Span

// traceRun performs a traced heterogeneous exchange (sparc-v9-64 sender,
// x86-64 receiver, DCG conversion) at each of the paper's four message
// sizes with sampling rate 1, joins sender and receiver spans offline,
// and prints the mean duration of every wire-path phase — the per-phase
// recipe of EXPERIMENTS.md.  The in-memory "wire" makes the wire phase a
// pure software cost (framing to arrival); over TCP it would include the
// network.
func traceRun(w io.Writer, outFile string) error {
	var dump spanDump
	t := &bench.Table{
		Title: fmt.Sprintf("Per-phase latency, traced pbio exchange (mean of %d records, sparc-v9-64 -> x86-64, DCG)", traceIters),
		Header: []string{"size", "extend", "frame", "wire", "match", "convert", "e2e"},
	}
	for _, s := range bench.Sizes() {
		fields := []pbio.FieldSpec{
			pbio.F("node", pbio.Int),
			pbio.F("timestamp", pbio.Double),
			pbio.F("iter", pbio.Long),
			pbio.Array("tag", pbio.Char, 16),
			pbio.F("residual", pbio.Float),
			pbio.F("flags", pbio.UInt),
			pbio.Array("values", pbio.Double, s.N),
		}
		sendTr := tracectx.New("sender", 1, traceIters*4)
		recvTr := tracectx.New("receiver", 1, traceIters*4)

		sctx, err := pbio.NewContext(pbio.WithArch("sparc-v9-64"), pbio.WithTracer(sendTr))
		if err != nil {
			return err
		}
		sf, err := sctx.Register("mixed", fields...)
		if err != nil {
			return err
		}
		var stream bytes.Buffer
		sw := sctx.NewWriter(&stream)
		rec := sf.NewRecord()
		for i := 0; i < traceIters; i++ {
			rec.SetInt("node", 0, int64(i))
			if err := sw.Write(rec); err != nil {
				return err
			}
		}

		rctx, err := pbio.NewContext(pbio.WithArch("x86-64"),
			pbio.WithConversion(pbio.Generated), pbio.WithTracer(recvTr))
		if err != nil {
			return err
		}
		rf, err := rctx.Register("mixed", fields...)
		if err != nil {
			return err
		}
		r := rctx.NewReader(&stream)
		out := rf.NewRecord()
		for i := 0; i < traceIters; i++ {
			m, err := r.Read()
			if err != nil {
				return err
			}
			if err := m.DecodeInto(rf, out); err != nil {
				return err
			}
		}

		sendSpans := sendTr.Collector().Snapshot()
		recvSpans := recvTr.Collector().Snapshot()
		dump = append(append(dump, sendSpans...), recvSpans...)
		traces := tracectx.Join(sendSpans, recvSpans)
		if len(traces) == 0 {
			return fmt.Errorf("%s: no traces joined", s.Label)
		}
		phase := make(map[string]time.Duration)
		var e2e time.Duration
		for i := range traces {
			b := traces[i].Break()
			e2e += b.E2E
			for _, p := range b.Phases {
				phase[p.Name] += p.Dur
			}
		}
		n := time.Duration(len(traces))
		t.AddRow(s.Label,
			bench.FmtDuration(phase[tracectx.PhaseExtend]/n),
			bench.FmtDuration(phase[tracectx.PhaseFrame]/n),
			bench.FmtDuration(phase[tracectx.PhaseWire]/n),
			bench.FmtDuration(phase[tracectx.PhaseMatch]/n),
			bench.FmtDuration(phase[tracectx.PhaseConv]/n),
			bench.FmtDuration(e2e/n))
	}
	t.Fprint(w)
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		if err := tracectx.WriteChrome(f, dump, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %d spans to %s (load in Perfetto / chrome://tracing)\n", len(dump), outFile)
	}
	return nil
}

// exchange writes telemetryIters records under the sender architecture
// and receives them under the receiver architecture, using View when
// zeroCopy is set and Decode (under the given conversion mode)
// otherwise.  Both contexts share the telemetry registry; the receiver
// context does the decoding, so the conversion-path counters land on
// its "mixed" format.
func exchange(reg *telemetry.Registry, sendArch, recvArch string, mode pbio.ConvMode, fields []pbio.FieldSpec, zeroCopy bool) error {
	sctx, err := pbio.NewContext(pbio.WithArch(sendArch))
	if err != nil {
		return err
	}
	sf, err := sctx.Register("mixed", fields...)
	if err != nil {
		return err
	}
	var stream bytes.Buffer
	sw := sctx.NewWriter(&stream)
	rec := sf.NewRecord()
	for i := 0; i < telemetryIters; i++ {
		rec.SetInt("node", 0, int64(i))
		if err := sw.Write(rec); err != nil {
			return err
		}
	}

	rctx, err := pbio.NewContext(pbio.WithArch(recvArch),
		pbio.WithConversion(mode), pbio.WithTelemetry(reg))
	if err != nil {
		return err
	}
	rf, err := rctx.Register("mixed", fields...)
	if err != nil {
		return err
	}
	r := rctx.NewReader(&stream)
	out := rf.NewRecord()
	for i := 0; i < telemetryIters; i++ {
		m, err := r.Read()
		if err != nil {
			return err
		}
		if zeroCopy {
			_, ok, err := m.View(rf)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("expected zero-copy view, layouts differ")
			}
			continue
		}
		if err := m.DecodeInto(rf, out); err != nil {
			return err
		}
	}
	return nil
}
