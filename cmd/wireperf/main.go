// Command wireperf regenerates the evaluation tables of "Efficient Wire
// Formats for High Performance Computing" (SC 2000): Figures 1-7 and the
// headline claims, using the mixed-field workload at the paper's four
// message sizes.
//
// Usage:
//
//	wireperf            # run everything
//	wireperf -fig 4     # one figure
//	wireperf -claims    # headline ratios only
//	wireperf -sizes     # show the workload sizes and layouts
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/abi"
	"repro/internal/bench"
	"repro/internal/wire"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (1-7); 0 runs all")
	claims := flag.Bool("claims", false, "compute the headline claims only")
	sizes := flag.Bool("sizes", false, "print the workload sizes and record layouts")
	gencost := flag.Bool("gencost", false, "DCG generation cost vs per-record saving")
	nested := flag.Bool("nested", false, "nested (array-of-structs) vs flat decode costs")
	homo := flag.Bool("homo", false, "homogeneous-exchange decode comparison")
	wires := flag.Bool("wire", false, "wire bytes per record across systems")
	xmlrt := flag.Bool("xmlrt", false, "the roundtrip Figure 5 omitted: XML vs PBIO")
	pairs := flag.Bool("pairs", false, "conversion cost across architecture pairs")
	live := flag.Bool("live", false, "actual roundtrips over TCP loopback (no model)")
	flag.Parse()

	switch {
	case *sizes:
		printSizes()
		return
	case *wires:
		bench.WireSizes().Fprint(os.Stdout)
		return
	case *gencost:
		bench.GenCost().Fprint(os.Stdout)
		return
	case *nested:
		bench.Nested().Fprint(os.Stdout)
		return
	case *homo:
		bench.Homo().Fprint(os.Stdout)
		return
	case *xmlrt:
		bench.XMLRoundTrip().Fprint(os.Stdout)
		return
	case *pairs:
		bench.Pairs().Fprint(os.Stdout)
		return
	case *live:
		bench.LiveRoundTrip().Fprint(os.Stdout)
		return
	}

	figures := map[int]func() *bench.Table{
		1: bench.Fig1, 2: bench.Fig2, 3: bench.Fig3, 4: bench.Fig4,
		5: bench.Fig5, 6: bench.Fig6, 7: bench.Fig7,
	}

	switch {
	case *claims:
		bench.Claims().Fprint(os.Stdout)
	case *fig != 0:
		fn, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "wireperf: no figure %d (have 1-7)\n", *fig)
			os.Exit(2)
		}
		fn().Fprint(os.Stdout)
	default:
		for i := 1; i <= 7; i++ {
			figures[i]().Fprint(os.Stdout)
		}
		bench.Claims().Fprint(os.Stdout)
	}
}

func printSizes() {
	t := &bench.Table{
		Title:  "Workload: mixed-field record (paper section 4.1)",
		Header: []string{"size", "values[]", "sparc bytes", "x86 bytes", "XDR bytes"},
	}
	for _, s := range bench.Sizes() {
		p := bench.MustPair(s, bench.MixedSchema)
		o := bench.MustOps(p)
		t.AddRow(s.Label,
			fmt.Sprint(s.N),
			fmt.Sprint(p.SparcFmt.Size),
			fmt.Sprint(p.X86Fmt.Size),
			fmt.Sprint(o.MPIPackedSize()))
	}
	t.Fprint(os.Stdout)

	fmt.Println("\nRecord layouts at 100b:")
	s := bench.Sizes()[0]
	for _, a := range []abi.Arch{abi.SparcV8, abi.X86} {
		a := a
		f := wire.MustLayout(bench.MixedSchema(s.N), &a)
		fmt.Print(f.String())
	}
}
