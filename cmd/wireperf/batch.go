package main

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/bench"
	"repro/pbio"
)

// batchRun measures one-way streaming throughput over TCP loopback at
// the paper's four message sizes, per-record framing vs coalesced batch
// frames (-batch N records per frame).  The exchange is homogeneous
// (x86-64 both ends) with zero-copy Views on the receiver, so framing
// and syscall overhead dominate — exactly the cost batching amortizes.
// Small records gain the most: at 100 b the per-record run pays one
// header and one writev per message, the batched run one per N.
func batchRun(w io.Writer, batch int) error {
	if batch < 2 {
		return fmt.Errorf("-batch %d: need at least 2 records per batch", batch)
	}
	// Receiver-side conversion matrix first: what the fused batch
	// programs buy per record, independent of framing.
	bench.BatchConv().Fprint(w)
	t := &bench.Table{
		Title:  fmt.Sprintf("Extension: batched vs per-record framing over TCP loopback (<= %d records/frame)", batch),
		Note:   "homogeneous x86-64 exchange, zero-copy View receive; msgs/sec over a one-way stream",
		Header: []string{"size", "records", "per-record msg/s", "batched msg/s", "speedup"},
	}
	for _, s := range bench.Sizes() {
		// ~4 MiB of record payload per run, bounded so the 100 b row
		// still sees enough messages to time the framing cost.
		iters := 4 << 20 / s.Target
		if iters > 32768 {
			iters = 32768
		}
		if iters < 256 {
			iters = 256
		}
		plain, err := batchThroughput(s.N, iters, 0)
		if err != nil {
			return fmt.Errorf("%s per-record: %w", s.Label, err)
		}
		batched, err := batchThroughput(s.N, iters, batch)
		if err != nil {
			return fmt.Errorf("%s batched: %w", s.Label, err)
		}
		t.AddRow(s.Label, fmt.Sprint(iters),
			fmtRate(plain), fmtRate(batched),
			fmt.Sprintf("%.2fx", batched/plain))
	}
	t.Fprint(w)
	return nil
}

// batchThroughput streams iters records through a fresh loopback
// connection and returns messages per second.  batch == 0 disables
// coalescing; otherwise the writer batches up to batch records per
// frame (flushing on size only, so the stream never stalls on a timer).
func batchThroughput(n, iters, batch int) (float64, error) {
	fields := []pbio.FieldSpec{
		pbio.F("node", pbio.Int),
		pbio.F("timestamp", pbio.Double),
		pbio.Array("values", pbio.Double, n),
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			rctx, err := pbio.NewContext(pbio.WithArch("x86-64"))
			if err != nil {
				return err
			}
			rf, err := rctx.Register("mixed", fields...)
			if err != nil {
				return err
			}
			r := rctx.NewReader(conn)
			defer r.Close()
			for i := 0; i < iters; i++ {
				m, err := r.Read()
				if err != nil {
					return fmt.Errorf("read %d: %w", i, err)
				}
				if _, ok, err := m.View(rf); err != nil || !ok {
					return fmt.Errorf("read %d: no zero-copy view (%v)", i, err)
				}
			}
			return nil
		}()
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	sctx, err := pbio.NewContext(pbio.WithArch("x86-64"))
	if err != nil {
		return 0, err
	}
	sf, err := sctx.Register("mixed", fields...)
	if err != nil {
		return 0, err
	}
	sw := sctx.NewWriter(conn)
	if batch > 0 {
		if err := sw.SetBatching(batch*sf.Size(), 0); err != nil {
			return 0, err
		}
	}
	rec := sf.NewRecord()

	start := time.Now()
	for i := 0; i < iters; i++ {
		rec.MustSetInt("node", 0, int64(i))
		if err := sw.Write(rec); err != nil {
			return 0, err
		}
	}
	if err := sw.Flush(); err != nil {
		return 0, err
	}
	if err := <-done; err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	return float64(iters) / elapsed.Seconds(), nil
}

// fmtRate prints a messages-per-second figure with k/M scaling.
func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}
