// Command pbio-relay runs a PBIO stream broker: producers connect to one
// port and publish record streams; consumers connect to another and
// receive everything, with format meta-information replayed to late
// joiners.
//
// Because PBIO records travel in the sender's native layout with
// self-describing meta-information, the relay forwards frames verbatim —
// no decode, no re-encode, no per-record CPU cost proportional to record
// complexity — which is the NDR property that makes cheap interposition
// (monitors, loggers, brokers) possible.
//
// Usage:
//
//	pbio-relay -producers 127.0.0.1:7850 -consumers 127.0.0.1:7851
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"repro/internal/relay"
)

func main() {
	prod := flag.String("producers", "127.0.0.1:7850", "address producers connect to")
	cons := flag.String("consumers", "127.0.0.1:7851", "address consumers connect to")
	flag.Parse()

	pln, err := net.Listen("tcp", *prod)
	if err != nil {
		log.Fatalf("pbio-relay: %v", err)
	}
	cln, err := net.Listen("tcp", *cons)
	if err != nil {
		log.Fatalf("pbio-relay: %v", err)
	}
	fmt.Printf("pbio-relay: producers on %s, consumers on %s\n", pln.Addr(), cln.Addr())
	log.Fatal(relay.NewServer().Serve(pln, cln))
}
