// Command pbio-relay runs a PBIO stream broker: producers connect to one
// port and publish record streams; consumers connect to another and
// receive everything, with format meta-information replayed to late
// joiners.
//
// Because PBIO records travel in the sender's native layout with
// self-describing meta-information, the relay forwards frames verbatim —
// no decode, no re-encode, no per-record CPU cost proportional to record
// complexity — which is the NDR property that makes cheap interposition
// (monitors, loggers, brokers) possible.  With -rebatch the relay
// additionally coalesces consecutive same-format records into batch
// frames (amortizing headers and consumer syscalls) without ever
// decoding them — records are held only while more input is already
// buffered, so coalescing adds no latency.
//
// Usage:
//
//	pbio-relay -producers 127.0.0.1:7850 -consumers 127.0.0.1:7851 \
//	    -timeout 30s -checksum-meta -stats 10s -metrics-addr 127.0.0.1:9850
//
// With -metrics-addr the relay serves its observability surface over
// HTTP: /metrics (Prometheus text exposition of frame, byte and
// checksum-failure counters), /debug/vars (the same as JSON),
// /debug/trace (recent wire-level trace events) and /debug/pprof/
// (net/http/pprof profiling).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/relay"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracectx"
)

func main() {
	prod := flag.String("producers", "127.0.0.1:7850", "address producers connect to")
	cons := flag.String("consumers", "127.0.0.1:7851", "address consumers connect to")
	timeout := flag.Duration("timeout", 0, "per-frame producer read / consumer write bound (0 = none)")
	sums := flag.Bool("checksum-meta", false, "checksum relay-originated frames (meta and re-batched data)")
	rebatch := flag.Int("rebatch", 0, "coalesce consecutive same-format records into batch frames of up to this many payload bytes (0 = forward verbatim)")
	statsEvery := flag.Duration("stats", 0, "print relay stats at this interval (0 = never)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/trace and /debug/pprof on this address (empty = disabled)")
	traceRate := flag.Float64("trace-rate", 0, "participate in cross-hop traces: record a relay span for every forwarded frame carrying wire trace context (any rate > 0 enables; spans served at /debug/trace.json on -metrics-addr)")
	flag.Parse()

	pln, err := net.Listen("tcp", *prod)
	if err != nil {
		log.Fatalf("pbio-relay: %v", err)
	}
	cln, err := net.Listen("tcp", *cons)
	if err != nil {
		log.Fatalf("pbio-relay: %v", err)
	}
	s := relay.NewServer()
	s.SetTimeouts(*timeout, *timeout)
	s.SetChecksums(*sums)
	s.SetRebatching(*rebatch)
	var tracer *tracectx.Tracer
	if *traceRate > 0 {
		// The relay never samples — it records spans for whatever trace
		// context producers put on the wire — so the rate only gates
		// whether tracing is on at all.
		tracer = tracectx.New("pbio-relay", *traceRate, 0)
		s.SetTracing(tracer)
	}
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		s.SetTelemetry(reg)
		tracer.ExportMetrics(reg)
		mln, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("pbio-relay: %v", err)
		}
		fmt.Printf("pbio-relay: metrics on %s\n", mln.Addr())
	}
	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := s.Stats()
				log.Printf("pbio-relay: %d frames, %d bytes forwarded, %d formats; "+
					"%d bad producers, %d resyncs, %d checksum failures, "+
					"%d dropped consumers, %d meta replays",
					st.Frames, st.ForwardedBytes, s.Formats(),
					st.BadProducers, st.Resyncs, st.ChecksumFailures,
					st.DroppedConsumers, st.MetaReplays)
				if st.LastProducerError != "" {
					log.Printf("pbio-relay: last producer error: %s", st.LastProducerError)
				}
			}
		}()
	}
	fmt.Printf("pbio-relay: producers on %s, consumers on %s\n", pln.Addr(), cln.Addr())
	log.Fatal(s.Serve(pln, cln))
}
