// Command pbio-relay runs a PBIO stream broker: producers connect to one
// port and publish record streams; consumers connect to another and
// receive everything, with format meta-information replayed to late
// joiners.
//
// Because PBIO records travel in the sender's native layout with
// self-describing meta-information, the relay forwards frames verbatim —
// no decode, no re-encode, no per-record CPU cost proportional to record
// complexity — which is the NDR property that makes cheap interposition
// (monitors, loggers, brokers) possible.  With -rebatch the relay
// additionally coalesces consecutive same-format records into batch
// frames (amortizing headers and consumer syscalls) without ever
// decoding them — records are held only while more input is already
// buffered, so coalescing adds no latency.
//
// Relays chain into fan-out trees: with -uplink the relay attaches below
// another relay's consumer port, subscribing to the live union of what
// its own consumers want (or a fixed -subscribe list) and ingesting the
// upstream stream as if it were a local producer.  Each consumer gets a
// bounded queue (-queue) whose overflow behavior is -queue-policy:
// disconnect the slow consumer (default, the historical behavior),
// drop-oldest (keep the consumer, evict and count the oldest data), or
// block (lossless; the slowest consumer paces the stream).
//
// Usage:
//
//	pbio-relay -producers 127.0.0.1:7850 -consumers 127.0.0.1:7851 \
//	    -timeout 30s -checksum-meta -stats 10s -metrics-addr 127.0.0.1:9850
//
//	pbio-relay -consumers 127.0.0.1:7861 -uplink 127.0.0.1:7851 \
//	    -subscribe temps,events -queue 512 -queue-policy drop-oldest
//
// With -metrics-addr the relay serves its observability surface over
// HTTP: /metrics (Prometheus text exposition of frame, byte and
// checksum-failure counters plus queue-depth and drop gauges and the
// pbio_go_* runtime families), /debug/vars (the same as JSON),
// /debug/trace (recent wire-level trace events), /debug/pprof/
// (net/http/pprof profiling), /debug/mesh (the hop's mesh-topology
// document — what pbio-mon crawls), /debug/flight (the flight-recorder
// journal as a PBIO stream; see also SIGQUIT and -flight-dump),
// /healthz (liveness) and /readyz (readiness: 503 until a configured
// -uplink is attached).  -node-id names the hop; the identity rides the
// uplink subscription handshake so neighbors — and crawlers — can map
// the tree.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/flightrec"
	"repro/internal/relay"
	"repro/internal/telemetry"
	"repro/internal/telemetry/runtimebridge"
	"repro/internal/telemetry/tracectx"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "pbio-relay: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	prod := flag.String("producers", "127.0.0.1:7850", "address producers connect to")
	cons := flag.String("consumers", "127.0.0.1:7851", "address consumers connect to")
	timeout := flag.Duration("timeout", 0, "per-frame producer read / consumer write bound (0 = none)")
	sums := flag.Bool("checksum-meta", false, "checksum relay-originated frames (meta and re-batched data)")
	rebatch := flag.Int("rebatch", 0, "coalesce consecutive same-format records into batch frames of up to this many payload bytes (0 = forward verbatim)")
	statsEvery := flag.Duration("stats", 0, "print relay stats at this interval (0 = never)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/trace and /debug/pprof on this address (empty = disabled)")
	traceRate := flag.Float64("trace-rate", 0, "participate in cross-hop traces: record a relay span for every forwarded frame carrying wire trace context (any rate > 0 enables; spans served at /debug/trace.json on -metrics-addr)")
	uplink := flag.String("uplink", "", "attach below an upstream relay: its consumer address to dial (empty = this relay is a root)")
	subscribe := flag.String("subscribe", "", "comma-separated format names to subscribe the -uplink to (empty = auto: the live union of what this relay's own consumers want)")
	queue := flag.Int("queue", 0, "per-consumer queue capacity in frames (0 = default 256)")
	queuePolicy := flag.String("queue-policy", "disconnect", "full-queue policy: disconnect, drop-oldest or block")
	nodeID := flag.String("node-id", "", "mesh node identity announced to uplink/downstream relays and served at /debug/mesh (empty = anonymous)")
	stallWindow := flag.Duration("stall-window", 10*time.Second, "flag a consumer as stalled when its non-empty queue has not drained for this long (0 = disable)")
	flightCap := flag.Int("flight", 4096, "flight recorder ring capacity in events (0 = disabled)")
	flightDump := flag.String("flight-dump", "", "write the flight journal here on SIGQUIT (default <node-id or pbio-relay>.flight.pbio)")
	flag.Parse()

	policy, err := relay.ParseQueuePolicy(*queuePolicy)
	if err != nil {
		return err
	}
	var static *transport.Subscription
	if *subscribe != "" {
		if *uplink == "" {
			return fmt.Errorf("-subscribe requires -uplink")
		}
		names := strings.Split(*subscribe, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
			if names[i] == "" {
				return fmt.Errorf("-subscribe has an empty format name")
			}
		}
		static = &transport.Subscription{Names: names}
	}

	pln, err := net.Listen("tcp", *prod)
	if err != nil {
		return err
	}
	cln, err := net.Listen("tcp", *cons)
	if err != nil {
		return err
	}
	s := relay.NewServer()
	s.SetTimeouts(*timeout, *timeout)
	s.SetChecksums(*sums)
	s.SetRebatching(*rebatch)
	s.SetQueue(*queue, policy)
	s.SetStallWindow(*stallWindow)
	var tracer *tracectx.Tracer
	if *traceRate > 0 {
		// The relay never samples — it records spans for whatever trace
		// context producers put on the wire — so the rate only gates
		// whether tracing is on at all.
		tracer = tracectx.New("pbio-relay", *traceRate, 0)
		s.SetTracing(tracer)
	}
	node := *nodeID
	if node == "" {
		node = "pbio-relay"
	}
	var rec *flightrec.Recorder
	if *flightCap > 0 {
		rec = flightrec.New(node, *flightCap)
		s.SetFlight(rec)
		dump := *flightDump
		if dump == "" {
			dump = node + ".flight.pbio"
		}
		rec.DumpOnSignal(dump)
	}
	meshAddr := ""
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		s.SetTelemetry(reg)
		tracer.ExportMetrics(reg)
		bridge := runtimebridge.Start(reg, 0)
		s.SetRuntimeProbe(func() relay.MeshRuntimeInfo {
			p := bridge.Snapshot()
			return relay.MeshRuntimeInfo{
				Goroutines:      p.Goroutines,
				HeapBytes:       p.HeapBytes,
				GCCycles:        p.GCCycles,
				GCPauseP99:      p.GCPauseP99,
				SchedLatencyP99: p.SchedLatencyP99,
			}
		})
		if rec != nil {
			rec.ExportMetrics(reg)
			reg.Handle("/debug/flight", rec.Handler())
		}
		reg.Handle("/healthz", telemetry.LiveHandler())
		// Ready means safe to attach consumers: a relay configured to
		// feed from an uplink serves nothing useful until it's attached.
		reg.Handle("/readyz", telemetry.ReadyHandler(func() error {
			if *uplink != "" && s.Uplinks() == 0 {
				return fmt.Errorf("uplink %s not attached", *uplink)
			}
			return nil
		}))
		mln, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		meshAddr = mln.Addr().String()
		fmt.Printf("pbio-relay: metrics on %s\n", mln.Addr())
	}
	if *nodeID != "" || meshAddr != "" {
		// Before the uplink dials: the first subscription handshake must
		// already carry the identity.
		s.SetNodeInfo(*nodeID, meshAddr)
	}
	if *uplink != "" {
		go runUplink(s, rec, *uplink, static)
	}
	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := s.Stats()
				log.Printf("pbio-relay: %d frames, %d bytes forwarded, %d formats; "+
					"%d bad producers, %d resyncs, %d checksum failures, "+
					"%d dropped consumers, %d disconnects, %d queue-dropped frames, %d meta replays",
					st.Frames, st.ForwardedBytes, s.Formats(),
					st.BadProducers, st.Resyncs, st.ChecksumFailures,
					st.DroppedConsumers, st.Disconnects, st.QueueDroppedFrames, st.MetaReplays)
				if st.LastProducerError != "" {
					log.Printf("pbio-relay: last producer error: %s", st.LastProducerError)
				}
			}
		}()
	}
	fmt.Printf("pbio-relay: producers on %s, consumers on %s\n", pln.Addr(), cln.Addr())
	return s.Serve(pln, cln)
}

// runUplink keeps the relay attached below its upstream, redialing with
// backoff whenever the link drops.  The subscription (static want-list
// or live downstream union) is re-sent on every new connection.
func runUplink(s *relay.Server, rec *flightrec.Recorder, addr string, static *transport.Subscription) {
	for backoff := time.Second; ; {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			log.Printf("pbio-relay: uplink dial %s: %v (retrying in %v)", addr, err, backoff)
			rec.Emit(flightrec.KindUplinkRedial, addr, 0, backoff.Nanoseconds(), 0)
			time.Sleep(backoff)
			if backoff < 30*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = time.Second
		log.Printf("pbio-relay: uplink attached to %s", addr)
		// Label the uplink with the address we dialed, not the resolved
		// remote — it's the name the operator knows the upstream by.
		if err := s.RunUplinkTo(conn, static, addr); err != nil {
			log.Printf("pbio-relay: uplink: %v", err)
			return // relay closed; no point redialing
		}
		log.Printf("pbio-relay: uplink to %s lost (redialing)", addr)
		time.Sleep(backoff)
	}
}
