package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pbio"
)

// buildRelay compiles the pbio-relay binary once per test run.
var buildOnce sync.Once
var builtBin string
var buildErr error

func buildRelay(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pbio-relay-test")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "pbio-relay")
		cmd := exec.Command("go", "build", "-o", builtBin, ".")
		cmd.Stderr = os.Stderr
		buildErr = cmd.Run()
	})
	if buildErr != nil {
		t.Fatalf("go build: %v", buildErr)
	}
	return builtBin
}

// relayProc is a running pbio-relay child process with its announced
// addresses.
type relayProc struct {
	cmd                          *exec.Cmd
	metricsAddr, prodAddr, consAddr string
}

// startRelayProc launches the binary with ephemeral ports plus extra
// args and parses the announce lines off stdout.
func startRelayProc(t *testing.T, bin string, extra ...string) *relayProc {
	t.Helper()
	args := append([]string{
		"-producers", "127.0.0.1:0",
		"-consumers", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &relayProc{cmd: cmd}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The daemon announces its bound addresses on stdout:
	//   pbio-relay: metrics on 127.0.0.1:NNN
	//   pbio-relay: producers on 127.0.0.1:NNN, consumers on 127.0.0.1:NNN
	sc := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for p.metricsAddr == "" || p.prodAddr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("pbio-relay exited before announcing its addresses")
			}
			if rest, ok := strings.CutPrefix(line, "pbio-relay: metrics on "); ok {
				p.metricsAddr = strings.TrimSpace(rest)
			}
			if rest, ok := strings.CutPrefix(line, "pbio-relay: producers on "); ok {
				parts := strings.Split(rest, ", consumers on ")
				if len(parts) != 2 {
					t.Fatalf("unexpected announce line: %q", line)
				}
				p.prodAddr, p.consAddr = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			}
		case <-deadline:
			t.Fatal("timed out waiting for pbio-relay to announce its addresses")
		}
	}
	// Keep draining so the child never blocks on a full stdout pipe.
	go func() {
		for range lines {
		}
	}()
	return p
}

// waitGauge polls a scraped gauge until it reaches want.
func waitGauge(t *testing.T, addr, name string, want int64) {
	t.Helper()
	for start := time.Now(); ; time.Sleep(5 * time.Millisecond) {
		if scrapeCounter(t, addr, name) >= want {
			return
		}
		if time.Since(start) > 10*time.Second {
			t.Fatalf("timed out waiting for %s >= %d", name, want)
		}
	}
}

// TestMetricsEndToEnd builds the real pbio-relay binary, runs it with
// -metrics-addr, pushes records through producer and consumer sockets,
// and scrapes the live /metrics endpoint asserting the frame counters
// advanced.  This is the end-to-end proof that the observability surface
// works outside unit tests: flag parsing, the HTTP server, the relay's
// CounterFunc bridge, and the Prometheus exposition all in one path.
func TestMetricsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a child process")
	}
	p := startRelayProc(t, buildRelay(t))

	// Baseline scrape: valid exposition, zero frames.
	if v := scrapeCounter(t, p.metricsAddr, "pbio_relay_frames_total"); v != 0 {
		t.Fatalf("pbio_relay_frames_total = %d before any traffic", v)
	}

	// Push records through: consumer first (so nothing is dropped), then
	// a producer stream.  Dial returning only means the TCP handshake
	// completed — the relay registers the subscription when its accept
	// loop picks the connection up, so wait for the consumers gauge
	// before producing anything a pub/sub broker would rightly not
	// deliver to a not-yet-joined subscriber.
	const records = 5
	consConn, err := net.Dial("tcp", p.consAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer consConn.Close()
	waitGauge(t, p.metricsAddr, "pbio_relay_consumers", 1)

	fields := []pbio.FieldSpec{pbio.F("v", pbio.Int)}
	pctx, err := pbio.NewContext(pbio.WithArch("sparc-v8"))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pctx.Register("e2e_rec", fields...)
	if err != nil {
		t.Fatal(err)
	}
	prodConn, err := net.Dial("tcp", p.prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer prodConn.Close()
	w := pctx.NewWriter(prodConn)
	rec := pf.NewRecord()
	for i := 0; i < records; i++ {
		rec.MustSetInt("v", 0, int64(i))
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}

	cctx, err := pbio.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cctx.Register("e2e_rec", fields...)
	if err != nil {
		t.Fatal(err)
	}
	r := cctx.NewReader(consConn)
	for i := 0; i < records; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("consumer read %d: %v", i, err)
		}
		got, err := m.Decode(cf)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := got.Int("v", 0); v != int64(i) {
			t.Fatalf("record %d: v = %d", i, v)
		}
	}

	// The consumer saw every record, so the relay has counted the frames;
	// the counter is read by the exporter at scrape time (CounterFunc).
	frames := scrapeCounter(t, p.metricsAddr, "pbio_relay_frames_total")
	if frames < records {
		t.Errorf("pbio_relay_frames_total = %d, want >= %d", frames, records)
	}
	if b := scrapeCounter(t, p.metricsAddr, "pbio_relay_forwarded_bytes_total"); b <= 0 {
		t.Errorf("pbio_relay_forwarded_bytes_total = %d, want > 0", b)
	}
	if f := scrapeCounter(t, p.metricsAddr, "pbio_relay_checksum_failures_total"); f != 0 {
		t.Errorf("pbio_relay_checksum_failures_total = %d on a clean link", f)
	}
	// The queue-depth gauges ride the same exposition.
	if d := scrapeCounter(t, p.metricsAddr, "pbio_relay_queue_depth_frames"); d < 0 {
		t.Errorf("pbio_relay_queue_depth_frames = %d", d)
	}

	// The profiling surface is reachable on the same listener.
	resp, err := http.Get("http://" + p.metricsAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

// TestUplinkTreeEndToEnd stands up a 2-relay tree from the real binary —
// a root and a leaf attached with -uplink — publishes at the root and
// reads every record at the leaf.
func TestUplinkTreeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs child processes")
	}
	bin := buildRelay(t)
	root := startRelayProc(t, bin)
	leaf := startRelayProc(t, bin, "-uplink", root.consAddr, "-queue", "512", "-queue-policy", "block")

	// The leaf's uplink shows up as a consumer at the root.
	waitGauge(t, root.metricsAddr, "pbio_relay_consumers", 1)

	consConn, err := net.Dial("tcp", leaf.consAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer consConn.Close()
	waitGauge(t, leaf.metricsAddr, "pbio_relay_consumers", 1)

	const records = 5
	pctx, err := pbio.NewContext(pbio.WithArch("sparc-v8"))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pctx.Register("tree_rec", pbio.F("v", pbio.Int))
	if err != nil {
		t.Fatal(err)
	}
	prodConn, err := net.Dial("tcp", root.prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer prodConn.Close()
	w := pctx.NewWriter(prodConn)
	rec := pf.NewRecord()
	for i := 0; i < records; i++ {
		rec.MustSetInt("v", 0, int64(i))
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}

	cctx, err := pbio.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cctx.Register("tree_rec", pbio.F("v", pbio.Int))
	if err != nil {
		t.Fatal(err)
	}
	r := cctx.NewReader(consConn)
	for i := 0; i < records; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("leaf consumer read %d: %v", i, err)
		}
		got, err := m.Decode(cf)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := got.Int("v", 0); v != int64(i) {
			t.Fatalf("record %d arrived as v=%d", i, v)
		}
	}
}

// TestExitNonZeroOnStartupFailure is the regression test for the silent
// exit-0 bug: startup failures — an unbindable -metrics-addr, a bad
// -queue-policy — must exit non-zero with the cause on stderr.
func TestExitNonZeroOnStartupFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a child process")
	}
	bin := buildRelay(t)

	// Occupy a port so the metrics bind must fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	defer ln.Close()

	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{
			name: "metrics bind conflict",
			args: []string{
				"-producers", "127.0.0.1:0",
				"-consumers", "127.0.0.1:0",
				"-metrics-addr", ln.Addr().String(),
			},
			wantMsg: "address already in use",
		},
		{
			name: "bad queue policy",
			args: []string{
				"-producers", "127.0.0.1:0",
				"-consumers", "127.0.0.1:0",
				"-queue-policy", "slowly",
			},
			wantMsg: "unknown queue policy",
		},
		{
			name: "subscribe without uplink",
			args: []string{
				"-producers", "127.0.0.1:0",
				"-consumers", "127.0.0.1:0",
				"-subscribe", "tick",
			},
			wantMsg: "-subscribe requires -uplink",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			out, err := exec.CommandContext(ctx, bin, tc.args...).CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("pbio-relay kept running instead of failing: %s", out)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("err = %v (output %q), want non-zero exit", err, out)
			}
			if code := ee.ExitCode(); code == 0 {
				t.Fatalf("exit code 0 on startup failure (output %q)", out)
			}
			if !strings.Contains(string(out), tc.wantMsg) {
				t.Fatalf("output %q lacks %q", out, tc.wantMsg)
			}
		})
	}
}

// scrapeCounter GETs /metrics and returns the named sample's value.
func scrapeCounter(t *testing.T, addr, name string) int64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape: content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == name {
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				t.Fatalf("scrape: bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("scrape: %s not found in exposition", name)
	return 0
}
