package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/pbio"
)

// TestMetricsEndToEnd builds the real pbio-relay binary, runs it with
// -metrics-addr, pushes records through producer and consumer sockets,
// and scrapes the live /metrics endpoint asserting the frame counters
// advanced.  This is the end-to-end proof that the observability surface
// works outside unit tests: flag parsing, the HTTP server, the relay's
// CounterFunc bridge, and the Prometheus exposition all in one path.
func TestMetricsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a child process")
	}
	bin := filepath.Join(t.TempDir(), "pbio-relay")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin,
		"-producers", "127.0.0.1:0",
		"-consumers", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The daemon announces its bound addresses on stdout:
	//   pbio-relay: metrics on 127.0.0.1:NNN
	//   pbio-relay: producers on 127.0.0.1:NNN, consumers on 127.0.0.1:NNN
	var metricsAddr, prodAddr, consAddr string
	sc := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for metricsAddr == "" || prodAddr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("pbio-relay exited before announcing its addresses")
			}
			if rest, ok := strings.CutPrefix(line, "pbio-relay: metrics on "); ok {
				metricsAddr = strings.TrimSpace(rest)
			}
			if rest, ok := strings.CutPrefix(line, "pbio-relay: producers on "); ok {
				parts := strings.Split(rest, ", consumers on ")
				if len(parts) != 2 {
					t.Fatalf("unexpected announce line: %q", line)
				}
				prodAddr, consAddr = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			}
		case <-deadline:
			t.Fatal("timed out waiting for pbio-relay to announce its addresses")
		}
	}

	// Baseline scrape: valid exposition, zero frames.
	if v := scrapeCounter(t, metricsAddr, "pbio_relay_frames_total"); v != 0 {
		t.Fatalf("pbio_relay_frames_total = %d before any traffic", v)
	}

	// Push records through: consumer first (so nothing is dropped), then
	// a producer stream.  Dial returning only means the TCP handshake
	// completed — the relay registers the subscription when its accept
	// loop picks the connection up, so wait for the consumers gauge
	// before producing anything a pub/sub broker would rightly not
	// deliver to a not-yet-joined subscriber.
	const records = 5
	consConn, err := net.Dial("tcp", consAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer consConn.Close()
	for start := time.Now(); ; time.Sleep(5 * time.Millisecond) {
		if scrapeCounter(t, metricsAddr, "pbio_relay_consumers") >= 1 {
			break
		}
		if time.Since(start) > 10*time.Second {
			t.Fatal("timed out waiting for the relay to register the consumer")
		}
	}

	fields := []pbio.FieldSpec{pbio.F("v", pbio.Int)}
	pctx, err := pbio.NewContext(pbio.WithArch("sparc-v8"))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pctx.Register("e2e_rec", fields...)
	if err != nil {
		t.Fatal(err)
	}
	prodConn, err := net.Dial("tcp", prodAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer prodConn.Close()
	w := pctx.NewWriter(prodConn)
	rec := pf.NewRecord()
	for i := 0; i < records; i++ {
		rec.MustSetInt("v", 0, int64(i))
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}

	cctx, err := pbio.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cctx.Register("e2e_rec", fields...)
	if err != nil {
		t.Fatal(err)
	}
	r := cctx.NewReader(consConn)
	for i := 0; i < records; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("consumer read %d: %v", i, err)
		}
		got, err := m.Decode(cf)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := got.Int("v", 0); v != int64(i) {
			t.Fatalf("record %d: v = %d", i, v)
		}
	}

	// The consumer saw every record, so the relay has counted the frames;
	// the counter is read by the exporter at scrape time (CounterFunc).
	frames := scrapeCounter(t, metricsAddr, "pbio_relay_frames_total")
	if frames < records {
		t.Errorf("pbio_relay_frames_total = %d, want >= %d", frames, records)
	}
	if b := scrapeCounter(t, metricsAddr, "pbio_relay_forwarded_bytes_total"); b <= 0 {
		t.Errorf("pbio_relay_forwarded_bytes_total = %d, want > 0", b)
	}
	if f := scrapeCounter(t, metricsAddr, "pbio_relay_checksum_failures_total"); f != 0 {
		t.Errorf("pbio_relay_checksum_failures_total = %d on a clean link", f)
	}

	// The profiling surface is reachable on the same listener.
	resp, err := http.Get("http://" + metricsAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

// scrapeCounter GETs /metrics and returns the named sample's value.
func scrapeCounter(t *testing.T, addr, name string) int64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape: content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == name {
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				t.Fatalf("scrape: bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("scrape: %s not found in exposition", name)
	return 0
}
