// Command benchjson converts `go test -bench` output on stdin into a
// benchstat-style JSON document on stdout, so benchmark runs can be
// stored as machine-readable artifacts (the repo's BENCH_pr3.json perf
// trajectory) and diffed across PRs without parsing text logs.
//
//	go test -bench=. -benchmem ./pbio/ | benchjson > BENCH_pr3.json
//
// Lines that are not benchmark results (package headers, PASS/ok, test
// logs) are ignored.
//
// With -compare, benchjson diffs two stored documents instead and exits
// nonzero when the new run regresses past the thresholds:
//
//	benchjson -compare BENCH_pr3.json BENCH_new.json
//
// allocs/op is compared exactly by default (an extra allocation on a
// hot path is a real change, not noise), B/op with a small relative
// slack, and ns/op with a wide one — wall-clock noise on shared CI
// machines dwarfs real regressions, so ns/op is also skipped entirely
// for low-iteration (smoke) runs, where a single timing quantum can be
// a 10x "regression".  A negative -ns-threshold disables the ns/op
// comparison altogether, for gating allocations against a baseline
// recorded on different hardware.
//
// Note that allocs/op and B/op only amortize one-time setup when the
// run has enough iterations: compare runs taken with -benchtime of at
// least a few thousand iterations, not 1x smoke artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two benchmark JSON documents: benchjson -compare old.json new.json")
	nsTol := flag.Float64("ns-threshold", 0.30, "relative ns/op regression threshold for -compare; negative disables the ns/op comparison")
	bTol := flag.Float64("bytes-threshold", 0.02, "relative B/op regression threshold for -compare")
	allocTol := flag.Int64("allocs-threshold", 0, "absolute allocs/op regression threshold for -compare")
	minIters := flag.Int64("min-iters", 10, "skip ns/op comparison when either run has fewer iterations (smoke runs)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressions, err := compareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), thresholds{
			ns: *nsTol, bytes: *bTol, allocs: *allocTol, minIters: *minIters,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) past threshold\n", regressions)
			os.Exit(1)
		}
		return
	}

	doc, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench converts `go test -bench` text into a Doc.
func parseBench(r io.Reader) (Doc, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var doc Doc
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		// `go test` prints "pkg: repro/pbio" in verbose benchmark output.
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if r, ok := parseLine(line, pkg); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	return doc, sc.Err()
}

// parseLine parses one `Benchmark…  N  x ns/op [y B/op] [z allocs/op]
// [w MB/s]` line.
func parseLine(line, pkg string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Package: pkg, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		case "MB/s":
			r.MBPerSec = v
		}
	}
	return r, seen
}

// thresholds configures what counts as a regression.
type thresholds struct {
	ns       float64 // relative ns/op growth tolerated
	bytes    float64 // relative B/op growth tolerated
	allocs   int64   // absolute allocs/op growth tolerated
	minIters int64   // below this, ns/op is noise and is not compared
}

func loadDoc(path string) (Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return Doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// benchKey identifies a benchmark across runs.  Names include the
// -cpu suffix (Benchmark…-8), so runs from machines with different
// GOMAXPROCS only match where they genuinely overlap.
func benchKey(r Result) string { return r.Package + "\x00" + r.Name }

// compareFiles diffs two stored runs and returns the regression count.
func compareFiles(w io.Writer, oldPath, newPath string, t thresholds) (int, error) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return 0, err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return 0, err
	}
	return compareDocs(w, oldDoc, newDoc, t), nil
}

// compareDocs prints the diff and returns how many benchmarks regressed
// past the thresholds.
func compareDocs(w io.Writer, oldDoc, newDoc Doc, t thresholds) int {
	oldBy := make(map[string]Result, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		oldBy[benchKey(r)] = r
	}
	regressions := 0
	matched := make(map[string]bool)
	for _, n := range newDoc.Benchmarks {
		o, ok := oldBy[benchKey(n)]
		if !ok {
			fmt.Fprintf(w, "new  %-48s (no baseline)\n", n.Name)
			continue
		}
		matched[benchKey(n)] = true
		var bad []string
		if d := n.AllocsPerOp - o.AllocsPerOp; d > t.allocs {
			bad = append(bad, fmt.Sprintf("allocs/op %d -> %d (+%d > +%d allowed)",
				o.AllocsPerOp, n.AllocsPerOp, d, t.allocs))
		}
		if o.BytesPerOp > 0 {
			if g := rel(float64(o.BytesPerOp), float64(n.BytesPerOp)); g > t.bytes {
				bad = append(bad, fmt.Sprintf("B/op %d -> %d (%+.1f%% > %.1f%% allowed)",
					o.BytesPerOp, n.BytesPerOp, 100*g, 100*t.bytes))
			}
		}
		nsNote := ""
		if t.ns < 0 {
			nsNote = " [ns/op not compared: disabled]"
		} else if o.Iterations < t.minIters || n.Iterations < t.minIters {
			nsNote = " [ns/op not compared: smoke run]"
		} else if g := rel(o.NsPerOp, n.NsPerOp); g > t.ns {
			bad = append(bad, fmt.Sprintf("ns/op %.1f -> %.1f (%+.1f%% > %.1f%% allowed)",
				o.NsPerOp, n.NsPerOp, 100*g, 100*t.ns))
		}
		status := "ok  "
		if len(bad) > 0 {
			status = "FAIL"
			regressions++
		}
		fmt.Fprintf(w, "%s %-48s ns/op %10.1f -> %-10.1f B/op %6d -> %-6d allocs/op %3d -> %-3d%s\n",
			status, n.Name, o.NsPerOp, n.NsPerOp, o.BytesPerOp, n.BytesPerOp,
			o.AllocsPerOp, n.AllocsPerOp, nsNote)
		for _, b := range bad {
			fmt.Fprintf(w, "     %s: %s\n", n.Name, b)
		}
	}
	for _, o := range oldDoc.Benchmarks {
		if !matched[benchKey(o)] {
			fmt.Fprintf(w, "gone %-48s (in baseline, not in new run)\n", o.Name)
		}
	}
	return regressions
}

// rel returns the relative growth from old to new (negative = improved).
func rel(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return (new - old) / old
}
