// Command benchjson converts `go test -bench` output on stdin into a
// benchstat-style JSON document on stdout, so benchmark runs can be
// stored as machine-readable artifacts (the repo's BENCH_pr3.json perf
// trajectory) and diffed across PRs without parsing text logs.
//
//	go test -bench=. -benchmem ./pbio/ | benchjson > BENCH_pr3.json
//
// Lines that are not benchmark results (package headers, PASS/ok, test
// logs) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var doc Doc
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		// `go test` prints "pkg: repro/pbio" in verbose benchmark output.
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if r, ok := parseLine(line, pkg); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one `Benchmark…  N  x ns/op [y B/op] [z allocs/op]
// [w MB/s]` line.
func parseLine(line, pkg string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Package: pkg, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		case "MB/s":
			r.MBPerSec = v
		}
	}
	return r, seen
}
