package main

import (
	"strings"
	"testing"
)

func docOf(results ...Result) Doc { return Doc{Benchmarks: results} }

func res(name string, iters int64, ns float64, b, allocs int64) Result {
	return Result{Name: name, Package: "repro/pbio", Iterations: iters,
		NsPerOp: ns, BytesPerOp: b, AllocsPerOp: allocs}
}

var defaultT = thresholds{ns: 0.30, bytes: 0.02, allocs: 0, minIters: 10}

func TestCompareClean(t *testing.T) {
	old := docOf(res("BenchmarkWrite-8", 1000, 100, 64, 2))
	new := docOf(res("BenchmarkWrite-8", 1000, 110, 64, 2))
	var out strings.Builder
	if got := compareDocs(&out, old, new, defaultT); got != 0 {
		t.Fatalf("regressions = %d, want 0\noutput:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "ok  ") {
		t.Fatalf("output missing ok line:\n%s", out.String())
	}
}

func TestCompareAllocRegression(t *testing.T) {
	old := docOf(res("BenchmarkWrite-8", 1000, 100, 64, 2))
	new := docOf(res("BenchmarkWrite-8", 1000, 100, 64, 3))
	var out strings.Builder
	if got := compareDocs(&out, old, new, defaultT); got != 1 {
		t.Fatalf("regressions = %d, want 1\noutput:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "allocs/op 2 -> 3") {
		t.Fatalf("output missing alloc diff:\n%s", out.String())
	}
}

func TestCompareAllocSlack(t *testing.T) {
	old := docOf(res("BenchmarkWrite-8", 1000, 100, 64, 2))
	new := docOf(res("BenchmarkWrite-8", 1000, 100, 64, 3))
	slack := defaultT
	slack.allocs = 1
	var out strings.Builder
	if got := compareDocs(&out, old, new, slack); got != 0 {
		t.Fatalf("regressions = %d, want 0 with allocs slack 1\noutput:\n%s", got, out.String())
	}
}

func TestCompareNsRegression(t *testing.T) {
	old := docOf(res("BenchmarkConvert-8", 1000, 100, 0, 0))
	new := docOf(res("BenchmarkConvert-8", 1000, 150, 0, 0))
	var out strings.Builder
	if got := compareDocs(&out, old, new, defaultT); got != 1 {
		t.Fatalf("regressions = %d, want 1 (+50%% ns/op)\noutput:\n%s", got, out.String())
	}
}

func TestCompareNsSkippedOnSmokeRun(t *testing.T) {
	// benchtime=1x smoke runs report 1 iteration; a 10x ns/op swing there
	// is a timing quantum, not a regression.
	old := docOf(res("BenchmarkConvert-8", 1, 100, 0, 0))
	new := docOf(res("BenchmarkConvert-8", 1, 1000, 0, 0))
	var out strings.Builder
	if got := compareDocs(&out, old, new, defaultT); got != 0 {
		t.Fatalf("regressions = %d, want 0 for smoke runs\noutput:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "smoke run") {
		t.Fatalf("output should note the skipped ns comparison:\n%s", out.String())
	}
}

func TestCompareNsDisabled(t *testing.T) {
	// A negative ns threshold turns off the wall-clock comparison (the
	// baseline may come from different hardware); allocs still gate.
	old := docOf(res("BenchmarkConvert-8", 1000, 100, 0, 0))
	new := docOf(res("BenchmarkConvert-8", 1000, 1000, 0, 0))
	disabled := defaultT
	disabled.ns = -1
	var out strings.Builder
	if got := compareDocs(&out, old, new, disabled); got != 0 {
		t.Fatalf("regressions = %d, want 0 with ns disabled\noutput:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "disabled") {
		t.Fatalf("output should note the disabled ns comparison:\n%s", out.String())
	}
	newAlloc := docOf(res("BenchmarkConvert-8", 1000, 1000, 0, 2))
	out.Reset()
	if got := compareDocs(&out, old, newAlloc, disabled); got != 1 {
		t.Fatalf("regressions = %d, want 1: allocs must still gate\noutput:\n%s", got, out.String())
	}
}

func TestCompareBytesRegression(t *testing.T) {
	old := docOf(res("BenchmarkWrite-8", 1000, 100, 100, 2))
	new := docOf(res("BenchmarkWrite-8", 1000, 100, 110, 2))
	var out strings.Builder
	if got := compareDocs(&out, old, new, defaultT); got != 1 {
		t.Fatalf("regressions = %d, want 1 (+10%% B/op)\noutput:\n%s", got, out.String())
	}
}

func TestCompareImprovementsPass(t *testing.T) {
	old := docOf(res("BenchmarkWrite-8", 1000, 100, 64, 4))
	new := docOf(res("BenchmarkWrite-8", 1000, 50, 32, 1))
	var out strings.Builder
	if got := compareDocs(&out, old, new, defaultT); got != 0 {
		t.Fatalf("regressions = %d, want 0 for improvements\noutput:\n%s", got, out.String())
	}
}

func TestCompareUnmatchedBenchmarks(t *testing.T) {
	old := docOf(res("BenchmarkGone-8", 1000, 100, 0, 0))
	new := docOf(res("BenchmarkNew-8", 1000, 100, 0, 0))
	var out strings.Builder
	if got := compareDocs(&out, old, new, defaultT); got != 0 {
		t.Fatalf("regressions = %d, want 0: missing benchmarks warn, not fail\noutput:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "no baseline") || !strings.Contains(out.String(), "not in new run") {
		t.Fatalf("output should note unmatched benchmarks on both sides:\n%s", out.String())
	}
}

func TestComparePackageScopesKey(t *testing.T) {
	// Same benchmark name in different packages must not cross-match.
	old := Doc{Benchmarks: []Result{
		{Name: "BenchmarkX-8", Package: "repro/a", Iterations: 1000, NsPerOp: 100},
	}}
	new := Doc{Benchmarks: []Result{
		{Name: "BenchmarkX-8", Package: "repro/b", Iterations: 1000, NsPerOp: 1000},
	}}
	var out strings.Builder
	if got := compareDocs(&out, old, new, defaultT); got != 0 {
		t.Fatalf("regressions = %d, want 0: different packages should not match\noutput:\n%s", got, out.String())
	}
}

func TestParseBenchRoundTrip(t *testing.T) {
	text := `goos: linux
pkg: repro/pbio
BenchmarkWriteRecord/1KB-8   	  500000	      2100 ns/op	     487.61 MB/s	      64 B/op	       2 allocs/op
BenchmarkDecodeDCG-8         	 1000000	      1500 ns/op
PASS
ok  	repro/pbio	3.2s
`
	doc, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkWriteRecord/1KB-8" || b.Package != "repro/pbio" ||
		b.Iterations != 500000 || b.NsPerOp != 2100 || b.BytesPerOp != 64 ||
		b.AllocsPerOp != 2 || b.MBPerSec != 487.61 {
		t.Fatalf("bad parse: %+v", b)
	}
}
