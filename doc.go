// Package repro is the root of a Go reproduction of "Efficient Wire
// Formats for High Performance Computing" (Bustamante, Eisenhauer,
// Schwan, Widener — SC 2000).
//
// The public library lives in package repro/pbio; the substrates it is
// built on live under internal/ (see DESIGN.md for the inventory); the
// experiment harness is internal/bench with the wireperf command; and the
// testing.B benchmarks regenerating the paper's figures are in
// bench_test.go alongside this file.
package repro
