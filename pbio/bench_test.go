package pbio

import (
	"bytes"
	"io"
	"net"
	"testing"
)

// BenchmarkWrite measures the full public-API send path (NDR handoff +
// framing) against a discarding sink.
func BenchmarkWrite(b *testing.B) {
	ctx, err := NewContext(WithArch("sparc-v8"))
	if err != nil {
		b.Fatal(err)
	}
	f, err := ctx.Register("mixed",
		F("node", Int), F("timestamp", Double), Array("values", Double, 1245))
	if err != nil {
		b.Fatal(err)
	}
	w := ctx.NewWriter(io.Discard)
	rec := f.NewRecord()
	b.SetBytes(int64(f.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadDecode measures the full receive path: framing, meta
// lookup, generated conversion into an owned record.
func BenchmarkReadDecode(b *testing.B) {
	sctx, err := NewContext(WithArch("sparc-v8"))
	if err != nil {
		b.Fatal(err)
	}
	fields := []FieldSpec{F("node", Int), F("timestamp", Double), Array("values", Double, 1245)}
	sf, err := sctx.Register("mixed", fields...)
	if err != nil {
		b.Fatal(err)
	}
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	if err := w.Write(sf.NewRecord()); err != nil {
		b.Fatal(err)
	}
	raw := stream.Bytes()

	rctx, err := NewContext(WithArch("x86"))
	if err != nil {
		b.Fatal(err)
	}
	rf, err := rctx.Register("mixed", fields...)
	if err != nil {
		b.Fatal(err)
	}
	out := rf.NewRecord()
	b.SetBytes(int64(rf.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rctx.NewReader(bytes.NewReader(raw))
		m, err := r.Read()
		if err != nil {
			b.Fatal(err)
		}
		if err := m.DecodeInto(rf, out); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// BenchmarkHomogeneousView measures the zero-copy receive path.
func BenchmarkHomogeneousView(b *testing.B) {
	ctx, err := NewContext(WithArch("x86"))
	if err != nil {
		b.Fatal(err)
	}
	fields := []FieldSpec{F("node", Int), Array("values", Double, 1245)}
	f, err := ctx.Register("mixed", fields...)
	if err != nil {
		b.Fatal(err)
	}
	var stream bytes.Buffer
	if err := ctx.NewWriter(&stream).Write(f.NewRecord()); err != nil {
		b.Fatal(err)
	}
	raw := stream.Bytes()
	b.SetBytes(int64(f.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ctx.NewReader(bytes.NewReader(raw))
		m, err := r.Read()
		if err != nil {
			b.Fatal(err)
		}
		rec, ok, err := m.View(f)
		if err != nil || !ok {
			b.Fatalf("View: %v %v", ok, err)
		}
		_ = rec
		r.Close()
	}
}

// benchWriteTCP streams b.N ~100-byte records through a real loopback
// socket with the peer draining bytes, so the measurement is the send
// path plus actual syscalls — the cost batching exists to amortize.
func benchWriteTCP(b *testing.B, batchRecords int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := NewContext(WithArch("x86-64"))
	if err != nil {
		b.Fatal(err)
	}
	f, err := ctx.Register("mixed",
		F("node", Int), F("timestamp", Double), Array("values", Double, 11))
	if err != nil {
		b.Fatal(err)
	}
	w := ctx.NewWriter(conn)
	if batchRecords > 0 {
		if err := w.SetBatching(batchRecords*f.Size(), 0); err != nil {
			b.Fatal(err)
		}
	}
	rec := f.NewRecord()
	b.SetBytes(int64(f.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	conn.Close()
	<-done
}

// BenchmarkPerRecordWrite100B frames every ~100-byte record on its own;
// BenchmarkBatchedWrite100B coalesces up to 64 per frame.  The ratio of
// their msgs/sec (1e9 / ns_per_op) is the batching win at the paper's
// smallest message size.
func BenchmarkPerRecordWrite100B(b *testing.B) { benchWriteTCP(b, 0) }
func BenchmarkBatchedWrite100B(b *testing.B)   { benchWriteTCP(b, 64) }

// benchTickFields is the ~100-byte record the batched-read benchmarks
// share with benchWriteTCP.
func benchTickFields() []FieldSpec {
	return []FieldSpec{F("node", Int), F("timestamp", Double), Array("values", Double, 11)}
}

// benchTickStream renders one encoded stream — a meta frame plus either
// one 64-record batch frame or 64 per-record frames — for replay through
// a streamReader, so read benchmarks measure a steady state of data
// frames without rebuilding writers.
func benchTickStream(b *testing.B, sendArch string, batched bool) []byte {
	b.Helper()
	ctx, err := NewContext(WithArch(sendArch))
	if err != nil {
		b.Fatal(err)
	}
	f, err := ctx.Register("tick", benchTickFields()...)
	if err != nil {
		b.Fatal(err)
	}
	var stream bytes.Buffer
	w := ctx.NewWriter(&stream)
	recs := make([]*Record, 64)
	for i := range recs {
		recs[i] = f.NewRecord()
		recs[i].MustSetInt("node", 0, int64(i))
	}
	if batched {
		if err := w.WriteBatch(recs); err != nil {
			b.Fatal(err)
		}
	} else {
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
	return stream.Bytes()
}

// BenchmarkPerRecordReadDecode100B is the per-record DCG baseline: every
// ~100-byte record pays its own framing read, plan lookup and Convert
// dispatch.  BenchmarkBatchedReadDecode100B decodes the same records
// from 64-record batch frames with one Read plus one fused ConvertBatch
// per frame; its loop advances b.N by the records decoded, so both
// benchmarks report ns per record and their ratio is the batch-decode
// win.  BenchmarkBatchedViewHomogeneous100B is the zero-copy ceiling at
// the same wire shape: homogeneous batch frames consumed record by
// record through View.
func BenchmarkPerRecordReadDecode100B(b *testing.B) {
	raw := benchTickStream(b, "sparc-v8", false)
	rctx, err := NewContext(WithArch("x86-64"))
	if err != nil {
		b.Fatal(err)
	}
	rf, err := rctx.Register("tick", benchTickFields()...)
	if err != nil {
		b.Fatal(err)
	}
	r := rctx.NewReader(&streamReader{raw: raw})
	defer r.Close()
	out := rf.NewRecord()
	b.SetBytes(int64(rf.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := r.Read()
		if err != nil {
			b.Fatal(err)
		}
		if err := m.DecodeInto(rf, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerRecordDecodeFromBatch100B is the PR-5 status quo: batch
// frames on the wire, but every record still decoded through its own
// Read + DecodeInto dispatch.  The gap to BenchmarkBatchedReadDecode100B
// is what the fused batch program buys on top of frame coalescing.
func BenchmarkPerRecordDecodeFromBatch100B(b *testing.B) {
	raw := benchTickStream(b, "sparc-v8", true)
	rctx, err := NewContext(WithArch("x86-64"))
	if err != nil {
		b.Fatal(err)
	}
	rf, err := rctx.Register("tick", benchTickFields()...)
	if err != nil {
		b.Fatal(err)
	}
	r := rctx.NewReader(&streamReader{raw: raw})
	defer r.Close()
	out := rf.NewRecord()
	b.SetBytes(int64(rf.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := r.Read()
		if err != nil {
			b.Fatal(err)
		}
		if err := m.DecodeInto(rf, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchedReadDecode100B(b *testing.B) {
	raw := benchTickStream(b, "sparc-v8", true)
	rctx, err := NewContext(WithArch("x86-64"))
	if err != nil {
		b.Fatal(err)
	}
	rf, err := rctx.Register("tick", benchTickFields()...)
	if err != nil {
		b.Fatal(err)
	}
	r := rctx.NewReader(&streamReader{raw: raw})
	defer r.Close()
	rb := rf.NewRecordBatch()
	b.SetBytes(int64(rf.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		m, err := r.Read()
		if err != nil {
			b.Fatal(err)
		}
		n, err := m.DecodeBatch(rf, rb)
		if err != nil {
			b.Fatal(err)
		}
		i += n
	}
}

func BenchmarkBatchedViewHomogeneous100B(b *testing.B) {
	raw := benchTickStream(b, "x86-64", true)
	rctx, err := NewContext(WithArch("x86-64"))
	if err != nil {
		b.Fatal(err)
	}
	rf, err := rctx.Register("tick", benchTickFields()...)
	if err != nil {
		b.Fatal(err)
	}
	r := rctx.NewReader(&streamReader{raw: raw})
	defer r.Close()
	b.SetBytes(int64(rf.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := r.Read()
		if err != nil {
			b.Fatal(err)
		}
		rec, ok, err := m.View(rf)
		if err != nil || !ok {
			b.Fatalf("View: %v %v", ok, err)
		}
		_ = rec
	}
}
