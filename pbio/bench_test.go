package pbio

import (
	"bytes"
	"io"
	"net"
	"testing"
)

// BenchmarkWrite measures the full public-API send path (NDR handoff +
// framing) against a discarding sink.
func BenchmarkWrite(b *testing.B) {
	ctx, err := NewContext(WithArch("sparc-v8"))
	if err != nil {
		b.Fatal(err)
	}
	f, err := ctx.Register("mixed",
		F("node", Int), F("timestamp", Double), Array("values", Double, 1245))
	if err != nil {
		b.Fatal(err)
	}
	w := ctx.NewWriter(io.Discard)
	rec := f.NewRecord()
	b.SetBytes(int64(f.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadDecode measures the full receive path: framing, meta
// lookup, generated conversion into an owned record.
func BenchmarkReadDecode(b *testing.B) {
	sctx, err := NewContext(WithArch("sparc-v8"))
	if err != nil {
		b.Fatal(err)
	}
	fields := []FieldSpec{F("node", Int), F("timestamp", Double), Array("values", Double, 1245)}
	sf, err := sctx.Register("mixed", fields...)
	if err != nil {
		b.Fatal(err)
	}
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	if err := w.Write(sf.NewRecord()); err != nil {
		b.Fatal(err)
	}
	raw := stream.Bytes()

	rctx, err := NewContext(WithArch("x86"))
	if err != nil {
		b.Fatal(err)
	}
	rf, err := rctx.Register("mixed", fields...)
	if err != nil {
		b.Fatal(err)
	}
	out := rf.NewRecord()
	b.SetBytes(int64(rf.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rctx.NewReader(bytes.NewReader(raw))
		m, err := r.Read()
		if err != nil {
			b.Fatal(err)
		}
		if err := m.DecodeInto(rf, out); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

// BenchmarkHomogeneousView measures the zero-copy receive path.
func BenchmarkHomogeneousView(b *testing.B) {
	ctx, err := NewContext(WithArch("x86"))
	if err != nil {
		b.Fatal(err)
	}
	fields := []FieldSpec{F("node", Int), Array("values", Double, 1245)}
	f, err := ctx.Register("mixed", fields...)
	if err != nil {
		b.Fatal(err)
	}
	var stream bytes.Buffer
	if err := ctx.NewWriter(&stream).Write(f.NewRecord()); err != nil {
		b.Fatal(err)
	}
	raw := stream.Bytes()
	b.SetBytes(int64(f.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ctx.NewReader(bytes.NewReader(raw))
		m, err := r.Read()
		if err != nil {
			b.Fatal(err)
		}
		rec, ok, err := m.View(f)
		if err != nil || !ok {
			b.Fatalf("View: %v %v", ok, err)
		}
		_ = rec
		r.Close()
	}
}

// benchWriteTCP streams b.N ~100-byte records through a real loopback
// socket with the peer draining bytes, so the measurement is the send
// path plus actual syscalls — the cost batching exists to amortize.
func benchWriteTCP(b *testing.B, batchRecords int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := NewContext(WithArch("x86-64"))
	if err != nil {
		b.Fatal(err)
	}
	f, err := ctx.Register("mixed",
		F("node", Int), F("timestamp", Double), Array("values", Double, 11))
	if err != nil {
		b.Fatal(err)
	}
	w := ctx.NewWriter(conn)
	if batchRecords > 0 {
		if err := w.SetBatching(batchRecords*f.Size(), 0); err != nil {
			b.Fatal(err)
		}
	}
	rec := f.NewRecord()
	b.SetBytes(int64(f.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	conn.Close()
	<-done
}

// BenchmarkPerRecordWrite100B frames every ~100-byte record on its own;
// BenchmarkBatchedWrite100B coalesces up to 64 per frame.  The ratio of
// their msgs/sec (1e9 / ns_per_op) is the batching win at the paper's
// smallest message size.
func BenchmarkPerRecordWrite100B(b *testing.B) { benchWriteTCP(b, 0) }
func BenchmarkBatchedWrite100B(b *testing.B)  { benchWriteTCP(b, 64) }
