package pbio_test

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"repro/pbio"
)

// Example shows the core PBIO flow: a big-endian SPARC writer, a
// little-endian x86 reader, field matching by name, and receiver-side
// conversion.
func Example() {
	// The sender (simulating a big-endian SPARC machine).
	sctx, err := pbio.NewContext(pbio.WithArch("sparc-v8"))
	if err != nil {
		log.Fatal(err)
	}
	sample, err := sctx.Register("sample",
		pbio.F("step", pbio.Int),
		pbio.F("energy", pbio.Double),
	)
	if err != nil {
		log.Fatal(err)
	}

	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	rec := sample.NewRecord()
	rec.MustSetInt("step", 0, 42)
	rec.MustSetFloat("energy", 0, 9.75)
	if err := w.Write(rec); err != nil { // native bytes on the wire
		log.Fatal(err)
	}

	// The receiver (simulating little-endian x86) needs only the field
	// names it cares about.
	rctx, err := pbio.NewContext(pbio.WithArch("x86"))
	if err != nil {
		log.Fatal(err)
	}
	expected, err := rctx.Register("sample",
		pbio.F("step", pbio.Int),
		pbio.F("energy", pbio.Double),
	)
	if err != nil {
		log.Fatal(err)
	}
	m, err := rctx.NewReader(&stream).Read()
	if err != nil {
		log.Fatal(err)
	}
	got, err := m.Decode(expected)
	if err != nil {
		log.Fatal(err)
	}
	step, _ := got.Int("step", 0)
	energy, _ := got.Float("energy", 0)
	fmt.Printf("step=%d energy=%v\n", step, energy)
	// Output: step=42 energy=9.75
}

// ExampleMessage_Fields demonstrates reflection: a receiver inspects an
// incoming format it has never seen.
func ExampleMessage_Fields() {
	sctx, _ := pbio.NewContext(pbio.WithArch("sparc-v8"))
	f, _ := sctx.Register("telemetry",
		pbio.F("t", pbio.Double),
		pbio.Array("sensors", pbio.Float, 4),
	)
	var stream bytes.Buffer
	_ = sctx.NewWriter(&stream).Write(f.NewRecord())

	rctx, _ := pbio.NewContext(pbio.WithArch("x86"))
	m, _ := rctx.NewReader(&stream).Read()
	for _, fi := range m.Fields() {
		fmt.Printf("%s %s x%d\n", fi.Name, fi.Type, fi.Count)
	}
	// Output:
	// t double x1
	// sensors float x4
}

// ExampleMessage_Decode_typeExtension demonstrates type extension: an
// evolved sender's extra field is ignored by an old receiver.
func ExampleMessage_Decode_typeExtension() {
	sctx, _ := pbio.NewContext(pbio.WithArch("x86"))
	v2, _ := sctx.Register("job",
		pbio.F("gpu_util", pbio.Double), // new in v2
		pbio.F("id", pbio.Int),
	)
	rec := v2.NewRecord()
	rec.MustSetFloat("gpu_util", 0, 0.9)
	rec.MustSetInt("id", 0, 7)
	var stream bytes.Buffer
	_ = sctx.NewWriter(&stream).Write(rec)

	rctx, _ := pbio.NewContext(pbio.WithArch("x86"))
	v1, _ := rctx.Register("job", pbio.F("id", pbio.Int)) // never updated
	m, _ := rctx.NewReader(&stream).Read()
	got, _ := m.Decode(v1)
	id, _ := got.Int("id", 0)
	fmt.Println("id:", id)
	// Output: id: 7
}

// ExampleStructFormat shows the Go-struct binding with a nested struct.
func ExampleStructFormat() {
	type Vec struct{ X, Y float64 }
	type State struct {
		Step int32
		Pos  Vec
	}
	sctx, _ := pbio.NewContext(pbio.WithArch("sparc-v9-64"))
	sf, _ := sctx.RegisterStruct("state", State{})
	rec, _ := sf.Marshal(&State{Step: 3, Pos: Vec{X: 1.5, Y: -2}})
	var stream bytes.Buffer
	_ = sctx.NewWriter(&stream).Write(rec)

	rctx, _ := pbio.NewContext(pbio.WithArch("x86"))
	rf, _ := rctx.RegisterStruct("state", State{})
	m, _ := rctx.NewReader(&stream).Read()
	var out State
	_ = m.DecodeStruct(rf, &out)
	fmt.Printf("%+v\n", out)
	// Output: {Step:3 Pos:{X:1.5 Y:-2}}
}

// ExampleMessage_Assess shows compatibility assessment before decoding.
func ExampleMessage_Assess() {
	sctx, _ := pbio.NewContext(pbio.WithArch("sparc-v9-64")) // LP64
	sf, _ := sctx.Register("m", pbio.F("n", pbio.Long))
	var stream bytes.Buffer
	_ = sctx.NewWriter(&stream).Write(sf.NewRecord())

	rctx, _ := pbio.NewContext(pbio.WithArch("x86")) // ILP32
	rf, _ := rctx.Register("m", pbio.F("n", pbio.Long))
	m, _ := rctx.NewReader(&stream).Read()
	c, _ := m.Assess(rf)
	fmt.Println("lossless:", c.Lossless, "narrowed:", c.Narrowed)
	// Output: lossless: false narrowed: [n]
}

// ExampleContext_NewReader_stream shows draining a stream to EOF.
func ExampleContext_NewReader_stream() {
	ctx, _ := pbio.NewContext(pbio.WithArch("x86"))
	f, _ := ctx.Register("tick", pbio.F("n", pbio.Int))
	var stream bytes.Buffer
	w := ctx.NewWriter(&stream)
	for i := 0; i < 3; i++ {
		rec := f.NewRecord()
		rec.MustSetInt("n", 0, int64(i))
		_ = w.Write(rec)
	}
	r := ctx.NewReader(&stream)
	for {
		m, err := r.Read()
		if err == io.EOF {
			break
		}
		rec, _ := m.Decode(f)
		n, _ := rec.Int("n", 0)
		fmt.Print(n, " ")
	}
	// Output: 0 1 2
}
