package pbio

import (
	"reflect"
	"testing"
)

func TestRecordMap(t *testing.T) {
	ctx := ctxFor(t, "sparc-v8")
	f, err := ctx.Register("m",
		F("n", Int),
		F("u", UInt),
		F("x", Double),
		Array("tag", Char, 8),
		Array("vs", Double, 3),
		Array("is", Short, 2),
		Struct("pos", F("a", Double), F("b", Int)),
		StructArray("cells", 2, F("id", Int)),
	)
	if err != nil {
		t.Fatal(err)
	}
	rec := f.NewRecord()
	rec.MustSetInt("n", 0, -5)
	rec.MustSetInt("u", 0, 7)
	rec.MustSetFloat("x", 0, 2.25)
	rec.MustSetString("tag", "hey")
	for i := 0; i < 3; i++ {
		rec.MustSetFloat("vs", i, float64(i))
	}
	rec.MustSetInt("is", 0, 1)
	rec.MustSetInt("is", 1, 2)
	pos := rec.MustSub("pos", 0)
	pos.MustSetFloat("a", 0, 9.5)
	pos.MustSetInt("b", 0, 3)
	for i := 0; i < 2; i++ {
		rec.MustSub("cells", i).MustSetInt("id", 0, int64(10+i))
	}

	want := map[string]any{
		"n":   int64(-5),
		"u":   uint64(7),
		"x":   2.25,
		"tag": "hey",
		"vs":  []float64{0, 1, 2},
		"is":  []int64{1, 2},
		"pos": map[string]any{"a": 9.5, "b": int64(3)},
		"cells": []map[string]any{
			{"id": int64(10)},
			{"id": int64(11)},
		},
	}
	got := rec.Map()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Map() =\n%#v\nwant\n%#v", got, want)
	}
}
