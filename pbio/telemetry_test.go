package pbio_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/pbio"
)

func telemetryFields() []pbio.FieldSpec {
	return []pbio.FieldSpec{
		pbio.F("node", pbio.Int),
		pbio.F("load", pbio.Double),
		pbio.Array("values", pbio.Double, 8),
	}
}

// runExchange writes n records from sendArch and receives them on a
// context using recvArch with the given conversion mode and registry.
// When zeroCopy is set the receiver uses View (and the test fails if the
// exchange was not actually zero-copy); otherwise DecodeInto.
func runExchange(t *testing.T, reg *telemetry.Registry, sendArch, recvArch string, mode pbio.ConvMode, n int, zeroCopy bool) {
	t.Helper()
	sctx, err := pbio.NewContext(pbio.WithArch(sendArch))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := sctx.Register("telem_rec", telemetryFields()...)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	rec := sf.NewRecord()
	for i := 0; i < n; i++ {
		rec.MustSetInt("node", 0, int64(i))
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}

	rctx, err := pbio.NewContext(pbio.WithArch(recvArch),
		pbio.WithConversion(mode), pbio.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("telem_rec", telemetryFields()...)
	if err != nil {
		t.Fatal(err)
	}
	r := rctx.NewReader(&stream)
	out := rf.NewRecord()
	for i := 0; i < n; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if zeroCopy {
			v, ok, err := m.View(rf)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("expected a zero-copy view, layouts differ")
			}
			if got, _ := v.Int("node", 0); got != int64(i) {
				t.Fatalf("record %d: node = %d", i, got)
			}
			continue
		}
		if err := m.DecodeInto(rf, out); err != nil {
			t.Fatal(err)
		}
		if got, _ := out.Int("node", 0); got != int64(i) {
			t.Fatalf("record %d: node = %d", i, got)
		}
	}
}

// TestBatchDecodePathCounters covers the fourth receive regime: a fused
// batch decode counts every record under the dcg_batch path, observes
// one latency per frame, and the batch-program cache exports its own
// pbio_dcg_batch_* compile/hit/miss families.
func TestBatchDecodePathCounters(t *testing.T) {
	const n = 12
	reg := telemetry.NewRegistry()

	sctx, err := pbio.NewContext(pbio.WithArch("sparc-v8"))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := sctx.Register("telem_rec", telemetryFields()...)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	recs := make([]*pbio.Record, n)
	for i := range recs {
		recs[i] = sf.NewRecord()
		recs[i].MustSetInt("node", 0, int64(i))
	}
	// Two frames, so the second decode exercises the memo/cache-hit path.
	if err := w.WriteBatch(recs[:n/2]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(recs[n/2:]); err != nil {
		t.Fatal(err)
	}

	rctx, err := pbio.NewContext(pbio.WithArch("x86-64"), pbio.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("telem_rec", telemetryFields()...)
	if err != nil {
		t.Fatal(err)
	}
	r := rctx.NewReader(&stream)
	defer r.Close()
	rb := rf.NewRecordBatch()
	for got := 0; got < n; {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := m.DecodeBatch(rf, rb)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cnt; i++ {
			if v, _ := rb.View(i).Int("node", 0); v != int64(got+i) {
				t.Fatalf("record %d: node = %d", got+i, v)
			}
		}
		got += cnt
	}

	paths := decodesByPath(reg, "telem_rec")
	if paths["dcg_batch"] != n {
		t.Fatalf("paths = %v, want dcg_batch=%d", paths, n)
	}
	if paths["dcg"] != 0 || paths["interp"] != 0 {
		t.Fatalf("fused decode leaked onto per-record paths: %v", paths)
	}

	families := make(map[string]int64)
	var frameObs int64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "pbio_dcg_batch_cache_hits_total", "pbio_dcg_batch_cache_misses_total":
			for _, s := range m.Series {
				families[m.Name] += s.Value
			}
		case "pbio_dcg_batch_compile_nanos":
			for _, s := range m.Series {
				families[m.Name] += s.Histogram.Count
			}
		case "pbio_decode_nanos":
			for _, s := range m.Series {
				if s.Labels["path"] == "dcg_batch" {
					frameObs += s.Histogram.Count
				}
			}
		}
	}
	// One compile (the miss); the second frame hits the reader memo, so
	// the shared cache sees no more traffic.
	if families["pbio_dcg_batch_cache_misses_total"] != 1 {
		t.Errorf("batch cache misses = %d, want 1 (families: %v)", families["pbio_dcg_batch_cache_misses_total"], families)
	}
	if families["pbio_dcg_batch_compile_nanos"] != 1 {
		t.Errorf("batch compiles observed = %d, want 1", families["pbio_dcg_batch_compile_nanos"])
	}
	// Latency is observed once per frame, not per record.
	if frameObs != 2 {
		t.Errorf("dcg_batch latency observations = %d, want 2 (one per frame)", frameObs)
	}
}

// decodesByPath distills the pbio_decodes_total family for one format
// out of a registry snapshot.
func decodesByPath(reg *telemetry.Registry, format string) map[string]int64 {
	out := make(map[string]int64)
	for _, m := range reg.Snapshot() {
		if m.Name != "pbio_decodes_total" {
			continue
		}
		for _, s := range m.Series {
			if s.Labels["format"] == format {
				out[s.Labels["path"]] += s.Value
			}
		}
	}
	return out
}

// TestConversionPathCounters is the acceptance test for the decode-path
// telemetry: the three receive regimes of the paper — zero-copy
// homogeneous View, interpreted conversion, DCG conversion — must land
// on three distinct counter series.
func TestConversionPathCounters(t *testing.T) {
	const n = 10
	reg := telemetry.NewRegistry()

	// Homogeneous exchange + View → zero_copy only.
	runExchange(t, reg, "x86-64", "x86-64", pbio.Generated, n, true)
	paths := decodesByPath(reg, "telem_rec")
	if paths["zero_copy"] != n || paths["interp"] != 0 || paths["dcg"] != 0 {
		t.Fatalf("after homogeneous View: paths = %v, want zero_copy=%d only", paths, n)
	}

	// Heterogeneous + Interpreted → interp grows, others hold.
	runExchange(t, reg, "sparc-v8", "x86-64", pbio.Interpreted, n, false)
	paths = decodesByPath(reg, "telem_rec")
	if paths["zero_copy"] != n || paths["interp"] != n || paths["dcg"] != 0 {
		t.Fatalf("after interpreted decode: paths = %v, want zero_copy=%d interp=%d", paths, n, n)
	}

	// Heterogeneous + Generated → dcg grows, others hold.
	runExchange(t, reg, "sparc-v8", "x86-64", pbio.Generated, n, false)
	paths = decodesByPath(reg, "telem_rec")
	if paths["zero_copy"] != n || paths["interp"] != n || paths["dcg"] != n {
		t.Fatalf("after DCG decode: paths = %v, want %d on each path", paths, n)
	}

	// The non-zero-copy paths also observe decode latency.
	var histCount int64
	for _, m := range reg.Snapshot() {
		if m.Name == "pbio_decode_nanos" {
			for _, s := range m.Series {
				histCount += s.Histogram.Count
			}
		}
	}
	if histCount != 2*n {
		t.Errorf("pbio_decode_nanos count = %d, want %d (interp + dcg decodes)", histCount, 2*n)
	}
}

// TestRecordCounters checks the send and receive record counters.
func TestRecordCounters(t *testing.T) {
	const n = 7
	reg := telemetry.NewRegistry()

	ctx, err := pbio.NewContext(pbio.WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.Register("telem_rec", telemetryFields()...)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w := ctx.NewWriter(&stream)
	rec := f.NewRecord()
	for i := 0; i < n; i++ {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	r := ctx.NewReader(&stream)
	for i := 0; i < n; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}

	want := map[string]int64{
		"pbio_records_sent_total":     n,
		"pbio_records_received_total": n,
	}
	for _, m := range reg.Snapshot() {
		wantV, ok := want[m.Name]
		if !ok {
			continue
		}
		var got int64
		for _, s := range m.Series {
			got += s.Value
		}
		if got != wantV {
			t.Errorf("%s = %d, want %d", m.Name, got, wantV)
		}
		delete(want, m.Name)
	}
	for name := range want {
		t.Errorf("metric %s not in snapshot", name)
	}

	// Transport counters rode along: frames and bytes moved both ways.
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"pbio_transport_frames_written_total",
		"pbio_transport_frames_read_total",
		"pbio_transport_bytes_written_total",
		"pbio_transport_bytes_read_total",
	} {
		if !strings.Contains(prom.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// TestTelemetryDisabled pins the default: no registry, no metrics, and
// the exchange still works (the no-op path).
func TestTelemetryDisabled(t *testing.T) {
	runExchange(t, nil, "sparc-v8", "x86-64", pbio.Generated, 3, false)

	ctx, err := pbio.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Telemetry() != nil {
		t.Fatal("telemetry should be nil by default")
	}
}
