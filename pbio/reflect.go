package pbio

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// Go-struct binding.
//
// The calibration note for this reproduction observes that Go's
// reflection helps where C programs would hand PBIO raw struct pointers:
// a Format can be derived from a Go struct type, values marshalled into
// the context's (simulated) native layout, and received messages decoded
// back into Go structs with PBIO's by-name matching semantics.
//
// Field mapping: exported fields only.  The wire name is the lower-cased
// Go field name, overridable with a `pbio:"name"` tag; `pbio:"-"` skips
// the field.  Supported Go types:
//
//	int8/byte-array-free types:
//	  int16 → short      uint16 → unsigned short
//	  int32 → int        uint32 → unsigned int
//	  int64 → long long  uint64 → unsigned long long
//	  float32 → float    float64 → double
//	  string  → char[N]  (N from the tag: `pbio:"name,size=16"`)
//	  [N]T and []T of the numeric types above → arrays
//
// Slices must carry a fixed wire length via `size=N` in the tag; on
// decode, shorter incoming arrays zero-fill the tail.

type structField struct {
	goIndex int
	spec    FieldSpec
	sub     []structField // non-nil for nested struct fields
}

// structFields derives the field specs for a struct type.
func structFields(t reflect.Type) ([]structField, error) {
	if t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("pbio: %s is not a struct", t)
	}
	var out []structField
	// Wire names are matched by name on decode; two fields mapping to the
	// same name (after the lower-casing default) would silently shadow
	// each other, so reject the type outright with both Go fields named.
	claimed := make(map[string]string)
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			continue
		}
		name := strings.ToLower(sf.Name)
		size := 0
		if tag, ok := sf.Tag.Lookup("pbio"); ok {
			parts := strings.Split(tag, ",")
			if parts[0] == "-" {
				continue
			}
			if parts[0] != "" {
				name = parts[0]
			}
			for _, p := range parts[1:] {
				if v, found := strings.CutPrefix(p, "size="); found {
					n, err := strconv.Atoi(v)
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("pbio: field %s: bad size tag %q", sf.Name, v)
					}
					size = n
				}
			}
		}
		if prev, dup := claimed[strings.ToLower(name)]; dup {
			return nil, fmt.Errorf("pbio: field %s: wire name %q collides with field %s (wire names are matched after lower-casing)", sf.Name, name, prev)
		}
		claimed[strings.ToLower(name)] = sf.Name
		spec, sub, err := specForGoType(sf.Type, name, size)
		if err != nil {
			return nil, fmt.Errorf("pbio: field %s: %w", sf.Name, err)
		}
		out = append(out, structField{goIndex: i, spec: spec, sub: sub})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pbio: %s has no usable exported fields", t)
	}
	return out, nil
}

func scalarType(k reflect.Kind) (Type, bool) {
	switch k {
	case reflect.Int16:
		return Short, true
	case reflect.Int32:
		return Int, true
	case reflect.Int64:
		return LongLong, true
	case reflect.Uint16:
		return UShort, true
	case reflect.Uint32:
		return UInt, true
	case reflect.Uint64:
		return ULongLong, true
	case reflect.Float32:
		return Float, true
	case reflect.Float64:
		return Double, true
	}
	return 0, false
}

func specForGoType(t reflect.Type, name string, size int) (FieldSpec, []structField, error) {
	if ft, ok := scalarType(t.Kind()); ok {
		return FieldSpec{Name: name, Type: ft, Count: 1}, nil, nil
	}
	switch t.Kind() {
	case reflect.String:
		if size <= 0 {
			return FieldSpec{}, nil, fmt.Errorf("string field needs a `pbio:\"...,size=N\"` tag")
		}
		return FieldSpec{Name: name, Type: Char, Count: size}, nil, nil
	case reflect.Struct:
		sub, err := structFields(t)
		if err != nil {
			return FieldSpec{}, nil, err
		}
		return FieldSpec{Name: name, Count: 1, Sub: subSpecs(sub)}, sub, nil
	case reflect.Array:
		if t.Elem().Kind() == reflect.Struct {
			sub, err := structFields(t.Elem())
			if err != nil {
				return FieldSpec{}, nil, err
			}
			return FieldSpec{Name: name, Count: t.Len(), Sub: subSpecs(sub)}, sub, nil
		}
		ft, ok := scalarType(t.Elem().Kind())
		if !ok {
			return FieldSpec{}, nil, fmt.Errorf("unsupported array element type %s", t.Elem())
		}
		return FieldSpec{Name: name, Type: ft, Count: t.Len()}, nil, nil
	case reflect.Slice:
		ft, ok := scalarType(t.Elem().Kind())
		if !ok {
			return FieldSpec{}, nil, fmt.Errorf("unsupported slice element type %s", t.Elem())
		}
		if size <= 0 {
			return FieldSpec{}, nil, fmt.Errorf("slice field needs a `pbio:\"...,size=N\"` tag")
		}
		return FieldSpec{Name: name, Type: ft, Count: size}, nil, nil
	}
	return FieldSpec{}, nil, fmt.Errorf("unsupported Go type %s", t)
}

func subSpecs(sub []structField) []FieldSpec {
	specs := make([]FieldSpec, len(sub))
	for i, f := range sub {
		specs[i] = f.spec
	}
	return specs
}

// StructFormat holds a format derived from a Go struct type, able to
// marshal values of that type and decode messages back into it.
type StructFormat struct {
	*Format
	goType reflect.Type
	fields []structField
}

// RegisterStruct derives a format from the (struct) type of template,
// laid out for the context's native architecture.
func (c *Context) RegisterStruct(name string, template any) (*StructFormat, error) {
	t := reflect.TypeOf(template)
	if t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil {
		return nil, fmt.Errorf("pbio: nil template")
	}
	fields, err := structFields(t)
	if err != nil {
		return nil, err
	}
	specs := make([]FieldSpec, len(fields))
	for i, f := range fields {
		specs[i] = f.spec
	}
	f, err := c.Register(name, specs...)
	if err != nil {
		return nil, err
	}
	return &StructFormat{Format: f, goType: t, fields: fields}, nil
}

// Marshal lays a struct value out as a native record.
func (sf *StructFormat) Marshal(v any) (*Record, error) {
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer {
		rv = rv.Elem()
	}
	if !rv.IsValid() {
		return nil, fmt.Errorf("pbio: Marshal: nil value, format was built from %s", sf.goType)
	}
	if rv.Type() != sf.goType {
		return nil, fmt.Errorf("pbio: Marshal: value is %v, format was built from %s", rv.Type(), sf.goType)
	}
	rec := sf.NewRecord()
	if err := marshalInto(rec, sf.fields, rv); err != nil {
		return nil, err
	}
	return rec, nil
}

func marshalInto(rec *Record, fields []structField, rv reflect.Value) error {
	for _, f := range fields {
		if err := marshalField(rec, &f, rv.Field(f.goIndex)); err != nil {
			return err
		}
	}
	return nil
}

func marshalField(rec *Record, f *structField, fv reflect.Value) error {
	spec := &f.spec
	if len(f.sub) > 0 {
		if fv.Kind() == reflect.Struct {
			sub, err := rec.Sub(spec.Name, 0)
			if err != nil {
				return err
			}
			return marshalInto(sub, f.sub, fv)
		}
		for i := 0; i < fv.Len(); i++ {
			sub, err := rec.Sub(spec.Name, i)
			if err != nil {
				return err
			}
			if err := marshalInto(sub, f.sub, fv.Index(i)); err != nil {
				return err
			}
		}
		return nil
	}
	switch fv.Kind() {
	case reflect.String:
		return rec.SetString(spec.Name, fv.String())
	case reflect.Array, reflect.Slice:
		n := fv.Len()
		if n > spec.Count {
			return fmt.Errorf("pbio: field %q: %d elements exceed wire length %d", spec.Name, n, spec.Count)
		}
		for i := 0; i < n; i++ {
			if err := marshalScalar(rec, spec, i, fv.Index(i)); err != nil {
				return err
			}
		}
		return nil
	default:
		return marshalScalar(rec, spec, 0, fv)
	}
}

func marshalScalar(rec *Record, spec *FieldSpec, i int, fv reflect.Value) error {
	switch fv.Kind() {
	case reflect.Int16, reflect.Int32, reflect.Int64:
		return rec.SetInt(spec.Name, i, fv.Int())
	case reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return rec.SetInt(spec.Name, i, int64(fv.Uint()))
	case reflect.Float32, reflect.Float64:
		return rec.SetFloat(spec.Name, i, fv.Float())
	}
	return fmt.Errorf("pbio: field %q: cannot marshal %s", spec.Name, fv.Kind())
}

// DecodeStruct decodes the message into the struct pointed to by out,
// using the StructFormat's layout as the expected format.  PBIO matching
// semantics apply: by-name, unknown incoming fields ignored, missing
// fields zeroed.
func (m *Message) DecodeStruct(sf *StructFormat, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("pbio: DecodeStruct needs a non-nil pointer, got %T", out)
	}
	rv = rv.Elem()
	if rv.Type() != sf.goType {
		return fmt.Errorf("pbio: DecodeStruct: target is %s, format was built from %s", rv.Type(), sf.goType)
	}
	rec, err := m.Decode(sf.Format)
	if err != nil {
		return err
	}
	return unmarshalInto(rec, sf, rv)
}

// Unmarshal converts a record of this format back into a struct value.
func (sf *StructFormat) Unmarshal(rec *Record, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("pbio: Unmarshal needs a non-nil pointer, got %T", out)
	}
	rv = rv.Elem()
	if rv.Type() != sf.goType {
		return fmt.Errorf("pbio: Unmarshal: target is %s, format was built from %s", rv.Type(), sf.goType)
	}
	if rec.fmt != sf.Format {
		return fmt.Errorf("pbio: Unmarshal: record format %q does not belong to this StructFormat", rec.fmt.Name())
	}
	return unmarshalInto(rec, sf, rv)
}

func unmarshalInto(rec *Record, sf *StructFormat, rv reflect.Value) error {
	return unmarshalFields(rec, sf.fields, rv)
}

func unmarshalFields(rec *Record, fields []structField, rv reflect.Value) error {
	for _, f := range fields {
		fv := rv.Field(f.goIndex)
		if err := unmarshalField(rec, &f, fv); err != nil {
			return err
		}
	}
	return nil
}

func unmarshalField(rec *Record, f *structField, fv reflect.Value) error {
	spec := &f.spec
	if len(f.sub) > 0 {
		if fv.Kind() == reflect.Struct {
			sub, err := rec.Sub(spec.Name, 0)
			if err != nil {
				return err
			}
			return unmarshalFields(sub, f.sub, fv)
		}
		for i := 0; i < fv.Len() && i < spec.Count; i++ {
			sub, err := rec.Sub(spec.Name, i)
			if err != nil {
				return err
			}
			if err := unmarshalFields(sub, f.sub, fv.Index(i)); err != nil {
				return err
			}
		}
		return nil
	}
	switch fv.Kind() {
	case reflect.String:
		s, err := rec.String(spec.Name)
		if err != nil {
			return err
		}
		fv.SetString(s)
		return nil
	case reflect.Array:
		for i := 0; i < fv.Len() && i < spec.Count; i++ {
			if err := unmarshalScalar(rec, spec, i, fv.Index(i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Slice:
		if fv.Len() != spec.Count {
			fv.Set(reflect.MakeSlice(fv.Type(), spec.Count, spec.Count))
		}
		for i := 0; i < spec.Count; i++ {
			if err := unmarshalScalar(rec, spec, i, fv.Index(i)); err != nil {
				return err
			}
		}
		return nil
	default:
		return unmarshalScalar(rec, spec, 0, fv)
	}
}

func unmarshalScalar(rec *Record, spec *FieldSpec, i int, fv reflect.Value) error {
	switch fv.Kind() {
	case reflect.Int16, reflect.Int32, reflect.Int64:
		v, err := rec.Int(spec.Name, i)
		if err != nil {
			return err
		}
		fv.SetInt(v)
	case reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v, err := rec.Int(spec.Name, i)
		if err != nil {
			return err
		}
		fv.SetUint(uint64(v))
	case reflect.Float32, reflect.Float64:
		v, err := rec.Float(spec.Name, i)
		if err != nil {
			return err
		}
		fv.SetFloat(v)
	default:
		return fmt.Errorf("pbio: field %q: cannot unmarshal into %s", spec.Name, fv.Kind())
	}
	return nil
}
