package pbio

import (
	"bytes"
	"strings"
	"testing"
)

type sample struct {
	Node      int32
	Timestamp float64
	Iter      int64
	Tag       string `pbio:"tag,size=16"`
	Residual  float32
	Flags     uint32
	Values    [4]float64
	Extra     []int32 `pbio:"extra,size=3"`
	hidden    int     // unexported: skipped
	Skipped   int32   `pbio:"-"`
}

func TestRegisterStructAndRoundTrip(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	sf, err := sctx.RegisterStruct("sample", sample{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.RegisterStruct("sample", &sample{}) // pointer template also fine
	if err != nil {
		t.Fatal(err)
	}

	in := sample{
		Node: 3, Timestamp: 9.75, Iter: -100, Tag: "hello",
		Residual: 0.5, Flags: 7,
		Values: [4]float64{1, 2.5, 3, 4.25},
		Extra:  []int32{10, 20, 30},
		hidden: 99, Skipped: 42,
	}
	rec, err := sf.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	var out sample
	if err := m.DecodeStruct(rf, &out); err != nil {
		t.Fatal(err)
	}
	in.hidden, in.Skipped = 0, 0 // not transmitted
	if out.Node != in.Node || out.Timestamp != in.Timestamp || out.Iter != in.Iter ||
		out.Tag != in.Tag || out.Residual != in.Residual || out.Flags != in.Flags ||
		out.Values != in.Values {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	if len(out.Extra) != 3 || out.Extra[0] != 10 || out.Extra[2] != 30 {
		t.Errorf("Extra = %v", out.Extra)
	}
	if out.Skipped != 0 {
		t.Errorf("Skipped = %d, should not travel", out.Skipped)
	}
}

func TestStructFieldNamesMatchRegisterNames(t *testing.T) {
	// Struct-derived formats interoperate with hand-registered ones:
	// lower-cased Go names match the C-style field names.
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	type point struct {
		X float64
		Y float64
	}
	sf, err := sctx.RegisterStruct("point", point{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("point", F("x", Double), F("y", Double))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sf.Marshal(point{X: 1.5, Y: -2.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Decode(rf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Float("x", 0); v != 1.5 {
		t.Errorf("x = %v", v)
	}
	if v, _ := got.Float("y", 0); v != -2.5 {
		t.Errorf("y = %v", v)
	}
}

func TestStructTypeExtensionAcrossVersions(t *testing.T) {
	// v2 sender struct has an extra field; v1 receiver struct ignores it.
	type v1 struct {
		A int32
		B float64
	}
	type v2 struct {
		New float64 // unexpected leading field, the paper's worst case
		A   int32
		B   float64
	}
	sctx := ctxFor(t, "x86")
	rctx := ctxFor(t, "x86")
	sf, err := sctx.RegisterStruct("msg", v2{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.RegisterStruct("msg", v1{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sf.Marshal(v2{New: 9, A: 4, B: 2.25})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	var out v1
	if err := m.DecodeStruct(rf, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != 4 || out.B != 2.25 {
		t.Errorf("out = %+v", out)
	}
}

func TestUnmarshalLocal(t *testing.T) {
	ctx := ctxFor(t, "x86")
	type rec struct {
		V [3]float32
		N uint16
	}
	sf, err := ctx.RegisterStruct("r", rec{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sf.Marshal(rec{V: [3]float32{1, 2, 3}, N: 65535})
	if err != nil {
		t.Fatal(err)
	}
	var out rec
	if err := sf.Unmarshal(r, &out); err != nil {
		t.Fatal(err)
	}
	if out.V != [3]float32{1, 2, 3} || out.N != 65535 {
		t.Errorf("out = %+v", out)
	}
	// Wrong targets rejected.
	if err := sf.Unmarshal(r, out); err == nil {
		t.Error("non-pointer accepted")
	}
	var wrong sample
	if err := sf.Unmarshal(r, &wrong); err == nil {
		t.Error("wrong struct type accepted")
	}
}

func TestRegisterStructErrors(t *testing.T) {
	ctx := ctxFor(t, "x86")
	cases := []struct {
		name     string
		template any
	}{
		{"nil", nil},
		{"non-struct", 42},
		{"no usable fields", struct{ hidden int }{}},
		{"string without size", struct{ S string }{}},
		{"slice without size", struct{ S []int32 }{}},
		{"unsupported type", struct{ M map[string]int }{}},
		{"unsupported elem", struct{ A [3]string }{}},
		{"bad size tag", struct {
			S string `pbio:"s,size=zero"` //pbiovet:allow tagcheck — intentionally malformed fixture
		}{}},
		{"int (platform-dependent)", struct{ N int }{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ctx.RegisterStruct("x", c.template); err == nil {
				t.Errorf("accepted %s", c.name)
			}
		})
	}
}

func TestRegisterStructDuplicateWireNames(t *testing.T) {
	ctx := ctxFor(t, "x86")
	cases := []struct {
		name     string
		template any
		mention  []string // both Go field names must appear in the error
	}{
		{"explicit tag collides with default", struct {
			Temp float64
			T    float64 `pbio:"temp"` //pbiovet:allow tagcheck — intentional collision fixture
		}{}, []string{"T", "Temp"}},
		{"two explicit tags collide", struct {
			A int32 `pbio:"v"`
			B int32 `pbio:"v"` //pbiovet:allow tagcheck — intentional collision fixture
		}{}, []string{"B", "A"}},
		{"names collide after lower-casing", struct {
			Value int32 `pbio:"V"`
			V     int32 //pbiovet:allow tagcheck — intentional collision fixture
		}{}, []string{"V", "Value"}},
		{"collision in nested struct", struct {
			Inner struct {
				X int32
				Y int32 `pbio:"x"` //pbiovet:allow tagcheck — intentional collision fixture
			}
		}{}, []string{"Y", "X"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ctx.RegisterStruct("x", c.template)
			if err == nil {
				t.Fatalf("accepted template with duplicate wire names")
			}
			for _, want := range c.mention {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not name field %s", err, want)
				}
			}
		})
	}

	// Distinct names that only differ before tagging stay accepted.
	ok := struct {
		Temp float64
		T    float64 `pbio:"t2"`
	}{}
	if _, err := ctx.RegisterStruct("ok", ok); err != nil {
		t.Fatalf("distinct wire names rejected: %v", err)
	}
}

func TestMarshalErrors(t *testing.T) {
	ctx := ctxFor(t, "x86")
	type rec struct {
		S []int32 `pbio:"s,size=2"`
	}
	sf, err := ctx.RegisterStruct("r", rec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Marshal(rec{S: []int32{1, 2, 3}}); err == nil {
		t.Error("oversized slice accepted")
	}
	if _, err := sf.Marshal(struct{ X int32 }{}); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := sf.Marshal((*rec)(nil)); err == nil {
		t.Error("nil pointer accepted")
	}
	// Short slices zero-fill.
	r, err := sf.Marshal(rec{S: []int32{7}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Int("s", 0); v != 7 {
		t.Errorf("s[0] = %d", v)
	}
	if v, _ := r.Int("s", 1); v != 0 {
		t.Errorf("s[1] = %d", v)
	}
}

func TestDecodeStructErrors(t *testing.T) {
	ctx := ctxFor(t, "x86")
	type rec struct{ A int32 }
	sf, err := ctx.RegisterStruct("r", rec{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r, err := sf.Marshal(rec{A: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.NewWriter(&buf).Write(r); err != nil {
		t.Fatal(err)
	}
	m, err := ctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	var out rec
	if err := m.DecodeStruct(sf, out); err == nil {
		t.Error("non-pointer accepted")
	}
	var wrong sample
	if err := m.DecodeStruct(sf, &wrong); err == nil {
		t.Error("wrong struct type accepted")
	}
	if err := m.DecodeStruct(sf, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != 1 {
		t.Errorf("A = %d", out.A)
	}
}
