package pbio

import (
	"fmt"
	"io"
	"time"

	"repro/internal/convert"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Writer transmits records over a byte stream.  Sending is NDR: the
// record's native bytes go on the wire unmodified; the format's
// meta-information is sent automatically before its first record.  A
// Writer is not safe for concurrent use.
type Writer struct {
	ctx *Context
	tw  *transport.Writer

	// traceBuf is the scratch image for sampled sends (see writeTraced):
	// the record's bytes plus the trailing trace field, reused across
	// writes so tracing steady-state allocates nothing.
	traceBuf []byte
}

// NewWriter returns a Writer over w.  The constructor body must stay
// within the inlining budget: callers that create short-lived writers
// rely on the escape analysis that inlining enables, so the optional
// format-server/telemetry wiring lives in equipWriter.
func (c *Context) NewWriter(w io.Writer) *Writer {
	tw := transport.NewWriter(w)
	c.equipWriter(tw)
	return &Writer{ctx: c, tw: tw}
}

func (c *Context) equipWriter(tw *transport.Writer) {
	if c.registrarFn != nil {
		tw.SetRegistrar(c.registrarFn)
	}
	if c.tmet != nil {
		tw.SetMetrics(c.tmet)
	}
}

// EnableChecksums makes the Writer emit a CRC32-C over every frame body.
// Receivers verify and strip the checksum transparently; readers that
// predate checksums reject the frames as corrupt, so only enable this
// when all consumers understand it.
func (w *Writer) EnableChecksums() { w.tw.SetChecksums(true) }

// SetTimeout bounds each record write when the underlying stream is a
// net.Conn (or anything else with SetWriteDeadline).  Zero means no
// bound.
func (w *Writer) SetTimeout(d time.Duration) { w.tw.SetTimeout(d) }

// Write transmits one record.
func (w *Writer) Write(rec *Record) error {
	if rec.fmt.ctx != w.ctx {
		return fmt.Errorf("pbio: record's format belongs to a different context")
	}
	if tr := w.ctx.tracer; tr != nil && tr.Sample() {
		return w.writeTraced(rec, tr)
	}
	if err := w.tw.WriteRecord(rec.fmt.wf, rec.rec.Buf); err != nil {
		return err
	}
	rec.fmt.met.sent.Inc()
	return nil
}

// Reader receives records from a byte stream.  A Reader is not safe for
// concurrent use.
type Reader struct {
	ctx *Context
	tr  *transport.Reader

	// traceOffs caches the trace-field offset per incoming wire format
	// (-1: format carries no trace field), so the per-message receive
	// check is one map hit.
	traceOffs map[*wire.Format]int
}

// NewReader returns a Reader over r.  Like NewWriter, the body stays
// within the inlining budget; optional wiring lives in equipReader.
func (c *Context) NewReader(r io.Reader) *Reader {
	tr := transport.NewReader(r)
	c.equipReader(tr)
	return &Reader{ctx: c, tr: tr}
}

func (c *Context) equipReader(tr *transport.Reader) {
	if c.resolverFn != nil {
		tr.SetResolver(c.resolverFn)
	}
	if c.tmet != nil {
		tr.SetMetrics(c.tmet)
	}
	if c.tracer != nil {
		// Arrival stamps anchor the wire-phase span; only tracing readers
		// pay for the clock read.
		tr.SetArrivalStamps(true)
	}
}

// SetTimeout bounds each message read when the underlying stream is a
// net.Conn (or anything else with SetReadDeadline).  Zero means no
// bound.
func (r *Reader) SetTimeout(d time.Duration) { r.tr.SetTimeout(d) }

// Read returns the next message.  It returns io.EOF at a clean end of
// stream.
func (r *Reader) Read() (*Message, error) {
	m, err := r.tr.ReadMessage()
	if err != nil {
		return nil, err
	}
	r.ctx.met.recordsRecv.Inc()
	msg := &Message{ctx: r.ctx, msg: m}
	if tr := r.ctx.tracer; tr != nil {
		r.noteArrival(msg, tr)
	}
	return msg, nil
}

// Message is one received record: the sender's native bytes plus the
// sender's format description.  The underlying data aliases the Reader's
// receive buffer and is valid until the next Read call; Decode into an
// owned Record (or struct) to keep it longer.
type Message struct {
	ctx *Context
	msg *transport.Message

	// Wire-carried trace context (see trace.go).  traced is set only when
	// the sender sampled this record and this context has tracing enabled.
	tc     wire.TraceContext
	traced bool
}

// FormatName returns the sender's format name.
func (m *Message) FormatName() string { return m.msg.Format.Name }

// WireSize returns the size in bytes of the record as transmitted (the
// sender's native size).
func (m *Message) WireSize() int { return m.msg.Format.Size }

// Fields describes the incoming format — PBIO's reflection support:
// receivers can inspect messages they have no a-priori knowledge of and
// decide at run time how to process them.
func (m *Message) Fields() []FieldInfo { return fieldInfos(m.msg.Format) }

// DescribeFormat renders the incoming format's full layout.
func (m *Message) DescribeFormat() string { return m.msg.Format.String() }

// SameLayout reports whether the incoming record's layout is identical to
// the expected format's — the homogeneous fast path, where the record is
// usable straight out of the receive buffer.
func (m *Message) SameLayout(f *Format) bool {
	return wire.SameLayout(m.msg.Format, f.wf)
}

// Decode converts the message into an owned record of the expected
// format.  Fields are matched by name: incoming fields the expected
// format lacks are ignored (type extension), expected fields the message
// lacks are zero.
func (m *Message) Decode(expected *Format) (*Record, error) {
	out := expected.NewRecord()
	if err := m.DecodeInto(expected, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto converts the message into an existing record of the expected
// format, reusing its storage.
func (m *Message) DecodeInto(expected *Format, out *Record) error {
	if out.fmt != expected {
		return fmt.Errorf("pbio: record is of format %q, not %q", out.fmt.Name(), expected.Name())
	}
	return m.convert(expected, out.rec.Buf)
}

// View returns the message decoded as a record of the expected format
// without copying, when the layouts are identical (the zero-copy
// homogeneous path).  The returned record aliases the receive buffer and
// is valid only until the next Read.  ok is false when conversion would
// be required; use Decode then.
func (m *Message) View(expected *Format) (rec *Record, ok bool, err error) {
	if m.traced {
		return m.viewTraced(expected)
	}
	if !m.SameLayout(expected) {
		return nil, false, nil
	}
	rec, err = expected.view(m.msg.Data)
	if err != nil {
		return nil, false, err
	}
	expected.met.decZero.Inc()
	return rec, true, nil
}

// convert runs the context's conversion engine from the message buffer
// into dst.
func (m *Message) convert(expected *Format, dst []byte) error {
	if m.traced {
		// Sampled messages take the instrumented copy of this path (see
		// trace.go) so the untraced hot path below stays branch-lean.
		return m.convertTraced(expected, dst)
	}
	switch m.ctx.mode {
	case Interpreted:
		// The interpreted baseline still computes its field table once
		// per wire format (as pre-DCG PBIO did); only the per-record
		// execution is interpreted.
		plan, err := m.ctx.plan(m.msg.Format, expected.wf)
		if err != nil {
			return err
		}
		it := convert.NewInterp(plan)
		if m.ctx.met.enabled {
			// The interpreter times itself (pbio_convert_interp_nanos);
			// the decode histogram gets the same observation under the
			// path label so regimes compare side by side.
			it.SetMetrics(m.ctx.convMet)
			start := time.Now()
			err = it.Convert(dst, m.msg.Data)
			if err == nil {
				expected.met.decInterp.Inc()
				m.ctx.met.interpNanos.Observe(time.Since(start).Nanoseconds())
			}
			return err
		}
		return it.Convert(dst, m.msg.Data)
	default:
		prog, err := m.ctx.cache.Get(m.msg.Format, expected.wf)
		if err != nil {
			return err
		}
		if m.ctx.met.enabled {
			start := time.Now()
			err = prog.Convert(dst, m.msg.Data)
			if err == nil {
				expected.met.decDCG.Inc()
				m.ctx.met.dcgNanos.Observe(time.Since(start).Nanoseconds())
			}
			return err
		}
		return prog.Convert(dst, m.msg.Data)
	}
}
