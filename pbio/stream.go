package pbio

import (
	"fmt"
	"io"
	"time"

	"repro/internal/convert"
	"repro/internal/dcg"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Writer transmits records over a byte stream.  Sending is NDR: the
// record's native bytes go on the wire unmodified; the format's
// meta-information is sent automatically before its first record.  A
// Writer is not safe for concurrent use.
type Writer struct {
	ctx *Context
	tw  *transport.Writer

	// traceBuf is the scratch image for sampled sends (see writeTraced):
	// the record's bytes plus the trailing trace field, reused across
	// writes so tracing steady-state allocates nothing.
	traceBuf []byte

	// Batching bookkeeping (see SetBatching).  When coalescing is on,
	// every record passes through the transport's pending batch; writeSeq
	// numbers them and flushedSeq advances as the flush hook reports
	// batches leaving, which is how traced records learn the wall-clock
	// window they spent buffered (pendingTraced, drained in order).
	batching      bool
	writeSeq      uint64
	flushedSeq    uint64
	pendingTraced []pendingTrace
}

// pendingTrace remembers a sampled record sitting in the write batch.
type pendingTrace struct {
	seq     uint64
	trace   uint64
	parent  uint64
	fmtName string
}

// NewWriter returns a Writer over w.  The constructor body must stay
// within the inlining budget: callers that create short-lived writers
// rely on the escape analysis that inlining enables, so the optional
// format-server/telemetry wiring lives in equipWriter.
func (c *Context) NewWriter(w io.Writer) *Writer {
	tw := transport.NewWriter(w)
	c.equipWriter(tw)
	return &Writer{ctx: c, tw: tw}
}

func (c *Context) equipWriter(tw *transport.Writer) {
	if c.registrarFn != nil {
		tw.SetRegistrar(c.registrarFn)
	}
	if c.tmet != nil {
		tw.SetMetrics(c.tmet)
	}
}

// EnableChecksums makes the Writer emit a CRC32-C over every frame body.
// Receivers verify and strip the checksum transparently; readers that
// predate checksums reject the frames as corrupt, so only enable this
// when all consumers understand it.
func (w *Writer) EnableChecksums() { w.tw.SetChecksums(true) }

// SetTimeout bounds each record write when the underlying stream is a
// net.Conn (or anything else with SetWriteDeadline).  Zero means no
// bound.
func (w *Writer) SetTimeout(d time.Duration) { w.tw.SetTimeout(d) }

// SetBatching enables small-record coalescing: consecutive same-format
// records are buffered and go out as one batch frame when the buffer
// reaches maxBytes, the format changes, the oldest buffered record is
// older than maxDelay at the next write, or Flush is called.  Buffered
// records are invisible to the receiver until flushed — call Flush
// before waiting on a response.  maxBytes ≤ 0 turns coalescing off
// (flushing anything pending).
func (w *Writer) SetBatching(maxBytes int, maxDelay time.Duration) error {
	if err := w.tw.SetBatching(maxBytes, maxDelay); err != nil {
		return err
	}
	w.batching = maxBytes > 0
	if w.batching && w.ctx.tracer != nil {
		w.tw.SetFlushHook(w.noteBatchFlush)
	}
	return nil
}

// Flush emits any records held back by batching.  A no-op when nothing
// is pending.
func (w *Writer) Flush() error { return w.tw.Flush() }

// Write transmits one record.
//
//pbio:hotpath noalloc=0 steady-state send path; pinned by pbio/alloc_test.go (TestAllocsSteadyStateWrite, TestAllocsBatchedWrite)
func (w *Writer) Write(rec *Record) error {
	if rec.fmt.ctx != w.ctx {
		return fmt.Errorf("pbio: record's format belongs to a different context")
	}
	if tr := w.ctx.tracer; tr != nil && tr.Sample() {
		return w.writeTraced(rec, tr)
	}
	if err := w.tw.WriteRecord(rec.fmt.wf, rec.rec.Buf); err != nil {
		return err
	}
	if w.batching {
		w.writeSeq++
	}
	rec.fmt.met.sent.Inc()
	return nil
}

// WriteBatch transmits a run of same-format records as a single batch
// frame, bypassing the coalescing copy: the records' native images go
// out in one vectored write.  Records buffered by SetBatching are
// flushed first, preserving order.  Batched sends are never sampled for
// tracing — the per-record trace field would break the fixed-stride
// layout batch frames rely on.
func (w *Writer) WriteBatch(recs []*Record) error {
	if len(recs) == 0 {
		return nil
	}
	f := recs[0].fmt
	if f.ctx != w.ctx {
		return fmt.Errorf("pbio: record's format belongs to a different context")
	}
	bufs := make([][]byte, len(recs))
	for i, rec := range recs {
		if rec.fmt != f {
			return fmt.Errorf("pbio: batch mixes formats %q and %q", f.Name(), rec.fmt.Name())
		}
		bufs[i] = rec.rec.Buf
	}
	if err := w.tw.WriteBatch(f.wf, bufs); err != nil {
		return err
	}
	f.met.sent.Add(int64(len(recs)))
	return nil
}

// Reader receives records from a byte stream.  A Reader is not safe for
// concurrent use.
//
// Close releases the reader's pooled receive buffer; messages, views and
// anything else aliasing it are invalid afterwards.  Closing is optional
// (an unclosed reader's buffer is simply garbage-collected) but keeps
// buffer churn off short-lived streams.
type Reader struct {
	ctx *Context
	tr  transport.Reader // embedded by value: one allocation per Reader, total

	// cur is the reusable message Read returns.  A Message is only valid
	// until the next Read (its data aliases the receive buffer), so one
	// struct serves the reader's lifetime and the steady-state read path
	// allocates nothing.
	cur Message

	// traceOffs caches the trace-field offset per incoming wire format
	// (-1: format carries no trace field), so the per-message receive
	// check is one map hit.
	traceOffs map[*wire.Format]int

	// Conversion memo: the last (wire format, expected format) pair this
	// reader converted and the program/plan that did it.  Streams deliver
	// long runs of one format, and the shared meta cache makes wire
	// format pointers stable across streams, so pointer equality hits
	// nearly always and skips the conversion-cache lock and map.
	memoWF    *wire.Format
	memoNF    *wire.Format
	memoProg  *dcg.Program
	memoPlan  *convert.Plan
	memoBatch *dcg.BatchProgram
}

// NewReader returns a Reader over r.  Like NewWriter, the body stays
// within the inlining budget; optional wiring lives in equipReader.
func (c *Context) NewReader(r io.Reader) *Reader {
	rd := &Reader{ctx: c}
	rd.tr.Reset(r)
	c.equipReader(&rd.tr)
	return rd
}

func (c *Context) equipReader(tr *transport.Reader) {
	tr.SetMetaCache(c.metaCache)
	if c.resolverFn != nil {
		tr.SetResolver(c.resolverFn)
	}
	if c.tmet != nil {
		tr.SetMetrics(c.tmet)
	}
	if c.tracer != nil {
		// Arrival stamps anchor the wire-phase span; only tracing readers
		// pay for the clock read.
		tr.SetArrivalStamps(true)
	}
}

// SetTimeout bounds each message read when the underlying stream is a
// net.Conn (or anything else with SetReadDeadline).  Zero means no
// bound.
func (r *Reader) SetTimeout(d time.Duration) { r.tr.SetTimeout(d) }

// Close returns the reader's pooled receive buffer to the buffer pool;
// subsequent reads fail and previously returned messages (including
// zero-copy views) are invalid.  It never touches the underlying stream.
func (r *Reader) Close() error { return r.tr.Close() }

// Read returns the next message.  It returns io.EOF at a clean end of
// stream.
//
// The returned Message is owned by the Reader and reused by the next
// Read call — the same lifetime its data already had (it aliases the
// receive buffer).  Decode into an owned Record (or struct) to keep a
// record longer.
func (r *Reader) Read() (*Message, error) {
	msg := &r.cur
	msg.ctx, msg.r = r.ctx, r
	msg.tc, msg.traced = wire.TraceContext{}, false
	if err := r.tr.ReadMessageInto(&msg.msg); err != nil {
		return nil, err
	}
	r.ctx.met.recordsRecv.Inc()
	if tr := r.ctx.tracer; tr != nil {
		r.noteArrival(msg, tr)
	}
	return msg, nil
}

// Message is one received record: the sender's native bytes plus the
// sender's format description.  The underlying data aliases the Reader's
// receive buffer, and the Message itself is reused by the Reader: both
// are valid until the next Read call.  Decode into an owned Record (or
// struct) to keep it longer.
type Message struct {
	ctx *Context
	r   *Reader // conversion memo lives on the reader; nil in tests that fake messages
	msg transport.Message

	// Wire-carried trace context (see trace.go).  traced is set only when
	// the sender sampled this record and this context has tracing enabled.
	tc     wire.TraceContext
	traced bool
}

// FormatName returns the sender's format name.
func (m *Message) FormatName() string { return m.msg.Format.Name }

// WireSize returns the size in bytes of the record as transmitted (the
// sender's native size).
func (m *Message) WireSize() int { return m.msg.Format.Size }

// Batched reports whether the record arrived inside a batch frame.
func (m *Message) Batched() bool { return m.msg.Batched }

// Fields describes the incoming format — PBIO's reflection support:
// receivers can inspect messages they have no a-priori knowledge of and
// decide at run time how to process them.
func (m *Message) Fields() []FieldInfo { return fieldInfos(m.msg.Format) }

// DescribeFormat renders the incoming format's full layout.
func (m *Message) DescribeFormat() string { return m.msg.Format.String() }

// SameLayout reports whether the incoming record's layout is identical to
// the expected format's — the homogeneous fast path, where the record is
// usable straight out of the receive buffer.
func (m *Message) SameLayout(f *Format) bool {
	return wire.SameLayout(m.msg.Format, f.wf)
}

// Decode converts the message into an owned record of the expected
// format.  Fields are matched by name: incoming fields the expected
// format lacks are ignored (type extension), expected fields the message
// lacks are zero.
func (m *Message) Decode(expected *Format) (*Record, error) {
	out := expected.NewRecord()
	if err := m.DecodeInto(expected, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto converts the message into an existing record of the expected
// format, reusing its storage.
func (m *Message) DecodeInto(expected *Format, out *Record) error {
	if out.fmt != expected {
		return fmt.Errorf("pbio: record is of format %q, not %q", out.fmt.Name(), expected.Name())
	}
	return m.convert(expected, out.rec.Buf)
}

// View returns the message decoded as a record of the expected format
// without copying, when the layouts are identical (the zero-copy
// homogeneous path).  The returned record aliases the receive buffer and
// is valid only until the next Read.  ok is false when conversion would
// be required; use Decode then.
func (m *Message) View(expected *Format) (rec *Record, ok bool, err error) {
	if m.traced {
		return m.viewTraced(expected)
	}
	if !m.SameLayout(expected) {
		return nil, false, nil
	}
	rec, err = expected.view(m.msg.Data)
	if err != nil {
		return nil, false, err
	}
	expected.met.decZero.Inc()
	return rec, true, nil
}

// program returns the generated conversion program from the message's
// wire format to nf, consulting the reader's memo before the shared
// cache.
func (m *Message) program(nf *wire.Format) (*dcg.Program, error) {
	if r := m.r; r != nil && r.memoWF == m.msg.Format && r.memoNF == nf && r.memoProg != nil {
		return r.memoProg, nil
	}
	prog, err := m.ctx.cache.Get(m.msg.Format, nf)
	if err != nil {
		return nil, err
	}
	if r := m.r; r != nil {
		if r.memoWF != m.msg.Format || r.memoNF != nf {
			r.memoBatch = nil
		}
		r.memoWF, r.memoNF, r.memoProg, r.memoPlan = m.msg.Format, nf, prog, nil
	}
	return prog, nil
}

// interpPlan is program's counterpart for the interpreted engine.
func (m *Message) interpPlan(nf *wire.Format) (*convert.Plan, error) {
	if r := m.r; r != nil && r.memoWF == m.msg.Format && r.memoNF == nf && r.memoPlan != nil {
		return r.memoPlan, nil
	}
	plan, err := m.ctx.plan(m.msg.Format, nf)
	if err != nil {
		return nil, err
	}
	if r := m.r; r != nil {
		if r.memoWF != m.msg.Format || r.memoNF != nf {
			r.memoBatch = nil
		}
		r.memoWF, r.memoNF, r.memoPlan, r.memoProg = m.msg.Format, nf, plan, nil
	}
	return plan, nil
}

// convert runs the context's conversion engine from the message buffer
// into dst.
func (m *Message) convert(expected *Format, dst []byte) error {
	if m.traced {
		// Sampled messages take the instrumented copy of this path (see
		// trace.go) so the untraced hot path below stays branch-lean.
		return m.convertTraced(expected, dst)
	}
	switch m.ctx.mode {
	case Interpreted:
		// The interpreted baseline still computes its field table once
		// per wire format (as pre-DCG PBIO did); only the per-record
		// execution is interpreted.
		plan, err := m.interpPlan(expected.wf)
		if err != nil {
			return err
		}
		it := convert.NewInterp(plan)
		if m.ctx.met.enabled {
			// The interpreter times itself (pbio_convert_interp_nanos);
			// the decode histogram gets the same observation under the
			// path label so regimes compare side by side.
			it.SetMetrics(m.ctx.convMet)
			start := time.Now()
			err = it.Convert(dst, m.msg.Data)
			if err == nil {
				expected.met.decInterp.Inc()
				m.ctx.met.interpNanos.Observe(time.Since(start).Nanoseconds())
			}
			return err
		}
		return it.Convert(dst, m.msg.Data)
	default:
		prog, err := m.program(expected.wf)
		if err != nil {
			return err
		}
		if m.ctx.met.enabled {
			start := time.Now()
			err = prog.Convert(dst, m.msg.Data)
			if err == nil {
				expected.met.decDCG.Inc()
				m.ctx.met.dcgNanos.Observe(time.Since(start).Nanoseconds())
			}
			return err
		}
		return prog.Convert(dst, m.msg.Data)
	}
}
