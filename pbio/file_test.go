package pbio

import (
	"os"
	"path/filepath"
	"testing"
)

func osStat(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func osTruncate(path string, size int64) error {
	return os.Truncate(path, size)
}

func TestFileWriteRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.pbio")

	// A sparc-layout producer writes a trace file...
	sctx := ctxFor(t, "sparc-v8")
	sf, err := sctx.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sctx.CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		rec := sf.NewRecord()
		fillMixed(t, rec)
		rec.MustSetInt("node", 0, int64(i))
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// ... an x86-layout analysis tool reads it later.
	rctx := ctxFor(t, "x86")
	rf, err := rctx.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rctx.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs, err := r.ReadAll(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if v, _ := rec.Int("node", 0); v != int64(i) {
			t.Errorf("record %d: node = %d", i, v)
		}
		if v, _ := rec.Float("timestamp", 0); v != 1234.5 {
			t.Errorf("record %d: timestamp = %v", i, v)
		}
	}
}

func TestFileErrors(t *testing.T) {
	ctx := ctxFor(t, "x86")
	if _, err := ctx.OpenFile(filepath.Join(t.TempDir(), "nope.pbio")); err == nil {
		t.Error("opening a missing file succeeded")
	}
	if _, err := ctx.CreateFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Error("creating in a missing directory succeeded")
	}
}

func TestFileReadAllOnTruncatedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.pbio")
	ctx := ctxFor(t, "x86")
	f, err := ctx.Register("a", F("x", Int))
	if err != nil {
		t.Fatal(err)
	}
	w, err := ctx.CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Write(f.NewRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record.
	full, err := filepath.Glob(path)
	if err != nil || len(full) != 1 {
		t.Fatal("glob failed")
	}
	st, err := osStat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := osTruncate(path, st-3); err != nil {
		t.Fatal(err)
	}
	r, err := ctx.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs, err := r.ReadAll(f)
	if err == nil {
		t.Errorf("truncated file read cleanly (%d records)", len(recs))
	}
	if len(recs) != 2 {
		t.Errorf("got %d complete records before the error, want 2", len(recs))
	}
}
