package pbio

import "io"

// Scanner provides a bufio.Scanner-style loop over a stream of records
// expected in one format:
//
//	sc := ctx.NewScanner(conn, format)
//	for sc.Next() {
//	    rec := sc.Record()
//	    ...
//	}
//	if err := sc.Err(); err != nil { ... }
//
// Records are decoded (converted if necessary) into a single reused
// Record, valid until the next call to Next.
type Scanner struct {
	r        *Reader
	expected *Format
	rec      *Record
	err      error
}

// NewScanner returns a Scanner decoding records of the expected format
// from r.
func (c *Context) NewScanner(r io.Reader, expected *Format) *Scanner {
	return &Scanner{
		r:        c.NewReader(r),
		expected: expected,
		rec:      expected.NewRecord(),
	}
}

// Next advances to the next record.  It returns false at end of stream or
// on error; Err distinguishes the two.
func (s *Scanner) Next() bool {
	if s.err != nil {
		return false
	}
	m, err := s.r.Read()
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.err = err
		return false
	}
	if err := m.DecodeInto(s.expected, s.rec); err != nil {
		s.err = err
		return false
	}
	return true
}

// Record returns the current record.  Its contents are overwritten by the
// next call to Next; Clone it to keep it.
func (s *Scanner) Record() *Record { return s.rec }

// Err returns the first error encountered (nil after a clean EOF).
func (s *Scanner) Err() error { return s.err }
