package pbio

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/tracectx"
)

// traceCtxFor builds a context with an always-on tracer named proc.
func traceCtxFor(t *testing.T, arch, proc string, opts ...Option) (*Context, *tracectx.Tracer) {
	t.Helper()
	tr := tracectx.New(proc, 1, 0)
	ctx := ctxFor(t, arch, append([]Option{WithTracer(tr)}, opts...)...)
	return ctx, tr
}

func spansNamed(spans []tracectx.Span, name string) []tracectx.Span {
	var out []tracectx.Span
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// TestTracedStreamDecodesIdentically is the type-extension acceptance
// check: a receiver that knows nothing about tracing decodes a traced
// stream into exactly the bytes an untraced stream produces.
func TestTracedStreamDecodesIdentically(t *testing.T) {
	fill := func(rec *Record) {
		rec.MustSetInt("x", 0, -42)
		for i := 0; i < 4; i++ {
			rec.MustSetFloat("vals", i, float64(i)*1.5)
		}
	}
	fields := []FieldSpec{F("x", Int), Array("vals", Double, 4)}

	encode := func(opts ...Option) []byte {
		sctx := ctxFor(t, "sparc-v9-64", opts...)
		f, err := sctx.Register("sample", fields...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w := sctx.NewWriter(&buf)
		rec := f.NewRecord()
		fill(rec)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := encode()
	traced := encode(WithTracing(1))
	if bytes.Equal(plain, traced) {
		t.Fatal("traced stream should differ on the wire (extended format)")
	}

	decode := func(stream []byte) []byte {
		rctx := ctxFor(t, "x86-64") // no tracing: the non-updated receiver
		f, err := rctx.Register("sample", fields...)
		if err != nil {
			t.Fatal(err)
		}
		m, err := rctx.NewReader(bytes.NewReader(stream)).Read()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := m.Decode(f)
		if err != nil {
			t.Fatal(err)
		}
		return rec.Bytes()
	}
	if !bytes.Equal(decode(plain), decode(traced)) {
		t.Fatal("non-tracing receiver decoded traced stream differently")
	}
}

// TestTraceSpansAcrossStream checks both ends record their phases and
// the offline join reassembles one trace.
func TestTraceSpansAcrossStream(t *testing.T) {
	sctx, str := traceCtxFor(t, "sparc-v9-64", "sender")
	f, err := sctx.Register("sample", F("x", Int), Array("vals", Double, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	if err := w.Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}

	rctx, rtr := traceCtxFor(t, "x86-64", "receiver")
	rf, err := rctx.Register("sample", F("x", Int), Array("vals", Double, 4))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(bytes.NewReader(buf.Bytes())).Read()
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := m.TraceID(); !ok || id == 0 {
		t.Fatalf("message not traced: id %#x ok %v", id, ok)
	}
	if _, err := m.Decode(rf); err != nil {
		t.Fatal(err)
	}

	sspans := str.Collector().Snapshot()
	for _, phase := range []string{tracectx.PhaseSend, tracectx.PhaseExtend, tracectx.PhaseFrame} {
		if got := spansNamed(sspans, phase); len(got) != 1 {
			t.Fatalf("sender has %d %q spans, want 1 (all: %+v)", len(got), phase, sspans)
		}
	}
	rspans := rtr.Collector().Snapshot()
	for _, phase := range []string{tracectx.PhaseWire, tracectx.PhaseMatch, tracectx.PhaseConv} {
		if got := spansNamed(rspans, phase); len(got) != 1 {
			t.Fatalf("receiver has %d %q spans, want 1 (all: %+v)", len(got), phase, rspans)
		}
	}
	if conv := spansNamed(rspans, tracectx.PhaseConv)[0]; conv.Path != "dcg" {
		t.Fatalf("convert span path %q, want dcg", conv.Path)
	}

	traces := tracectx.Join(sspans, rspans)
	if len(traces) != 1 {
		t.Fatalf("joined %d traces, want 1", len(traces))
	}
	b := traces[0].Break()
	if len(b.Procs) != 2 || b.Procs[0] != "sender" || b.Procs[1] != "receiver" {
		t.Fatalf("hops = %v, want [sender receiver]", b.Procs)
	}
	// Every downstream span is parented on the sender's root send span.
	root := spansNamed(sspans, tracectx.PhaseSend)[0]
	for _, s := range append(spansNamed(rspans, tracectx.PhaseWire), spansNamed(rspans, tracectx.PhaseConv)...) {
		if s.Parent != root.ID {
			t.Fatalf("span %q parent %#x, want sender root %#x", s.Name, s.Parent, root.ID)
		}
		if s.Trace != root.Trace {
			t.Fatalf("span %q trace %#x, want %#x", s.Name, s.Trace, root.Trace)
		}
	}
}

// TestTracedInterpPath checks the interpreted regime labels its spans.
func TestTracedInterpPath(t *testing.T) {
	sctx, _ := traceCtxFor(t, "sparc-v9-64", "sender")
	f, err := sctx.Register("sample", F("x", Int))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}
	rctx, rtr := traceCtxFor(t, "x86-64", "receiver", WithConversion(Interpreted))
	rf, err := rctx.Register("sample", F("x", Int))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(bytes.NewReader(buf.Bytes())).Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Decode(rf); err != nil {
		t.Fatal(err)
	}
	conv := spansNamed(rtr.Collector().Snapshot(), tracectx.PhaseConv)
	if len(conv) != 1 || conv[0].Path != "interp" {
		t.Fatalf("interp convert spans: %+v", conv)
	}
}

// TestTracedZeroCopyView checks the homogeneous fast path still works
// for traced messages: the receiver recognizes its own trace-extended
// layout and views the base record without conversion.
func TestTracedZeroCopyView(t *testing.T) {
	sctx, _ := traceCtxFor(t, "x86-64", "sender")
	f, err := sctx.Register("sample", F("x", Int), Array("vals", Double, 4))
	if err != nil {
		t.Fatal(err)
	}
	rec := f.NewRecord()
	rec.MustSetInt("x", 0, 77)
	rec.MustSetFloat("vals", 2, 2.5)
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}

	rctx, rtr := traceCtxFor(t, "x86-64", "receiver")
	rf, err := rctx.Register("sample", F("x", Int), Array("vals", Double, 4))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(bytes.NewReader(buf.Bytes())).Read()
	if err != nil {
		t.Fatal(err)
	}
	view, ok, err := m.View(rf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("homogeneous traced message refused zero-copy view")
	}
	if x, _ := view.Int("x", 0); x != 77 {
		t.Fatalf("viewed x = %d, want 77", x)
	}
	if v, _ := view.Float("vals", 2); v != 2.5 {
		t.Fatalf("viewed vals[2] = %v, want 2.5", v)
	}
	vs := spansNamed(rtr.Collector().Snapshot(), tracectx.PhaseView)
	if len(vs) != 1 || vs[0].Path != "zero_copy" {
		t.Fatalf("view spans: %+v", vs)
	}
}

// TestTracingDisabledMatchesPlainWire: rate 0 leaves the wire bytes
// identical to a context with no tracer at all.
func TestTracingDisabledMatchesPlainWire(t *testing.T) {
	fields := []FieldSpec{F("x", Int)}
	encode := func(opts ...Option) []byte {
		ctx := ctxFor(t, "x86-64", opts...)
		f, err := ctx.Register("sample", fields...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ctx.NewWriter(&buf).Write(f.NewRecord()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(), encode(WithTracing(0))) {
		t.Fatal("rate-0 tracing changed the wire bytes")
	}
}

// TestUntraceableFormatFallsBack: a format that already uses the
// reserved field name sends untraced rather than failing.
func TestUntraceableFormatFallsBack(t *testing.T) {
	sctx, str := traceCtxFor(t, "x86-64", "sender")
	f, err := sctx.Register("odd", F("x", Int), Array("__pbio_trace", ULongLong, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}
	rctx := ctxFor(t, "x86-64")
	rf, err := rctx.Register("odd", F("x", Int), Array("__pbio_trace", ULongLong, 3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(bytes.NewReader(buf.Bytes())).Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Decode(rf); err != nil {
		t.Fatal(err)
	}
	if got := spansNamed(str.Collector().Snapshot(), tracectx.PhaseSend); len(got) != 0 {
		t.Fatalf("untraceable format recorded %d send spans, want 0", len(got))
	}
}

// TestTraceMetricsExported: WithTracing + WithTelemetry publishes the
// tracer counters and mounts /debug/trace.json.
func TestTraceMetricsExported(t *testing.T) {
	reg := telemetry.NewRegistry()
	ctx := ctxFor(t, "x86-64", WithTelemetry(reg), WithTracing(1))
	f, err := ctx.Register("sample", F("x", Int))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctx.NewWriter(&buf).Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}
	found := make(map[string]int64)
	for _, m := range reg.Snapshot() {
		for _, s := range m.Series {
			found[m.Name] = s.Value
		}
	}
	if found["pbio_trace_messages_sampled_total"] != 1 {
		t.Fatalf("sampled counter = %d, want 1 (metrics: %v)", found["pbio_trace_messages_sampled_total"], found)
	}
	if found["pbio_trace_spans_total"] != 3 {
		t.Fatalf("spans counter = %d, want 3 (send, extend, frame)", found["pbio_trace_spans_total"])
	}
	mux := reg.ServeMux()
	if mux == nil {
		t.Fatal("nil mux")
	}
	h, pattern := mux.Handler(httptest.NewRequest("GET", "/debug/trace.json", nil))
	if pattern != "/debug/trace.json" || h == nil {
		t.Fatalf("trace.json not mounted: pattern %q", pattern)
	}
}

// TestWireSpanAnchoredOnSendStamp: the wire span starts at the sender's
// wall-clock send stamp and ends at arrival.
func TestWireSpanAnchoredOnSendStamp(t *testing.T) {
	sctx, _ := traceCtxFor(t, "x86-64", "sender")
	f, err := sctx.Register("sample", F("x", Int))
	if err != nil {
		t.Fatal(err)
	}
	before := time.Now()
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}
	rctx, rtr := traceCtxFor(t, "x86-64", "receiver")
	if _, err := rctx.NewReader(bytes.NewReader(buf.Bytes())).Read(); err != nil {
		t.Fatal(err)
	}
	after := time.Now()
	ws := spansNamed(rtr.Collector().Snapshot(), tracectx.PhaseWire)
	if len(ws) != 1 {
		t.Fatalf("wire spans: %+v", ws)
	}
	if ws[0].Start.Before(before) || ws[0].End().After(after.Add(time.Millisecond)) {
		t.Fatalf("wire span [%v, %v] outside test window [%v, %v]",
			ws[0].Start, ws[0].End(), before, after)
	}
	_ = f
}
