package pbio

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"repro/internal/fmtserver"
)

// startFormatServer runs a format server for the test.
func startFormatServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = fmtserver.NewServer().Serve(ln) }()
	return ln.Addr().String()
}

func TestExchangeViaFormatServer(t *testing.T) {
	addr := startFormatServer(t)

	sctx, err := NewContext(WithArch("sparc-v8"), WithFormatServer(addr))
	if err != nil {
		t.Fatal(err)
	}
	rctx, err := NewContext(WithArch("x86"), WithFormatServer(addr))
	if err != nil {
		t.Fatal(err)
	}

	sf, err := sctx.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	rec := sf.NewRecord()
	fillMixed(t, rec)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}

	// The stream must be smaller than the in-band equivalent: meta was
	// replaced by an 8-byte reference.
	var inband bytes.Buffer
	plain, err := NewContext(WithArch("sparc-v8"))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := plain.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}
	prec := pf.NewRecord()
	fillMixed(t, prec)
	pw := plain.NewWriter(&inband)
	if err := pw.Write(prec); err != nil {
		t.Fatal(err)
	}
	if err := pw.Write(prec); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= inband.Len() {
		t.Errorf("format-server stream %d bytes >= in-band %d bytes", buf.Len(), inband.Len())
	}

	r := rctx.NewReader(&buf)
	for i := 0; i < 2; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Decode(rf)
		if err != nil {
			t.Fatal(err)
		}
		checkMixed(t, got)
	}
}

func TestFormatServerStreamNeedsResolver(t *testing.T) {
	addr := startFormatServer(t)
	sctx, err := NewContext(WithArch("sparc-v8"), WithFormatServer(addr))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := sctx.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(sf.NewRecord()); err != nil {
		t.Fatal(err)
	}
	// A plain context (no server) cannot read the stream.
	plain, _ := NewContext(WithArch("x86"))
	_, err = plain.NewReader(&buf).Read()
	if err == nil || !strings.Contains(err.Error(), "format server") {
		t.Errorf("reading server-mode stream without resolver: %v", err)
	}
}

func TestWithFormatServerBadAddr(t *testing.T) {
	if _, err := NewContext(WithFormatServer("127.0.0.1:1")); err == nil {
		t.Error("dial to closed port succeeded")
	}
}
