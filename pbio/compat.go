package pbio

import "repro/internal/convert"

// Compat reports the consequences of decoding a message into an expected
// format: what converts, what narrows, what is missing or ignored.
// Reflection-driven receivers (paper §4.4) use this to decide at run time
// whether an incoming format is acceptable before decoding records.
type Compat struct {
	// Exact: identical layouts — zero-copy receive (see Message.View).
	Exact bool
	// Lossless: every expected field present, no conversion can lose
	// information.
	Lossless bool
	// Converted lists fields needing representation changes.
	Converted []string
	// Narrowed lists fields at risk of truncation or precision loss.
	Narrowed []string
	// Truncated lists arrays with fewer destination elements than the
	// wire carries.
	Truncated []string
	// Missing lists expected fields the wire lacks (decoded as zero).
	Missing []string
	// Ignored lists wire fields the expected format lacks.
	Ignored []string
}

// String renders the report for humans.
func (c *Compat) String() string { return c.internal().String() }

func (c *Compat) internal() *convert.Compat {
	return &convert.Compat{
		Exact: c.Exact, Lossless: c.Lossless,
		Converted: c.Converted, Narrowed: c.Narrowed, Truncated: c.Truncated,
		Missing: c.Missing, Ignored: c.Ignored,
	}
}

// Assess reports what decoding this message into the expected format
// would preserve, convert, or drop — without decoding anything.
func (m *Message) Assess(expected *Format) (*Compat, error) {
	c, err := convert.Assess(m.msg.Format, expected.wf)
	if err != nil {
		return nil, err
	}
	return &Compat{
		Exact: c.Exact, Lossless: c.Lossless,
		Converted: c.Converted, Narrowed: c.Narrowed, Truncated: c.Truncated,
		Missing: c.Missing, Ignored: c.Ignored,
	}, nil
}
