package pbio

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry/tracectx"
)

// batchFormat registers a small fixed-size format on ctx.
func batchFormat(t *testing.T, ctx *Context) *Format {
	t.Helper()
	f, err := ctx.Register("tick", F("seq", Int), F("v", Double))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBatchedWriteRoundTrip(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	if err := w.SetBatching(1<<16, 0); err != nil {
		t.Fatal(err)
	}
	const n = 6
	want := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		rec := f.NewRecord()
		rec.MustSetInt("seq", 0, int64(i))
		rec.MustSetFloat("v", 0, float64(i)*2.5)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, int64(i))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rctx := ctxFor(t, "x86")
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(&stream)
	defer r.Close()
	for i := 0; i < n; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !m.Batched() {
			t.Errorf("record %d: Batched()=false after coalesced send", i)
		}
		rec, err := m.Decode(rf)
		if err != nil {
			t.Fatal(err)
		}
		if seq, _ := rec.Int("seq", 0); seq != want[i] {
			t.Errorf("record %d: seq=%d", i, seq)
		}
		if v, _ := rec.Float("v", 0); v != float64(i)*2.5 {
			t.Errorf("record %d: v=%v", i, v)
		}
	}
}

func TestWriteBatchAPIRoundTrip(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	recs := make([]*Record, 4)
	for i := range recs {
		recs[i] = f.NewRecord()
		recs[i].MustSetInt("seq", 0, int64(i+10))
	}
	if err := w.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}

	rctx := ctxFor(t, "x86-64")
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(&stream)
	defer r.Close()
	for i := range recs {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		rec, err := m.Decode(rf)
		if err != nil {
			t.Fatal(err)
		}
		if seq, _ := rec.Int("seq", 0); seq != int64(i+10) {
			t.Errorf("record %d: seq=%d, want %d", i, seq, i+10)
		}
	}
}

func TestWriteBatchRejectsMixedFormats(t *testing.T) {
	ctx := ctxFor(t, "x86")
	f1 := batchFormat(t, ctx)
	f2, err := ctx.Register("other", F("x", Int))
	if err != nil {
		t.Fatal(err)
	}
	w := ctx.NewWriter(&bytes.Buffer{})
	err = w.WriteBatch([]*Record{f1.NewRecord(), f2.NewRecord()})
	if err == nil || !strings.Contains(err.Error(), "mixes formats") {
		t.Errorf("mixed-format batch: err=%v", err)
	}
}

// TestPhaseBatchSpans checks the batching-delay attribution: every
// sampled record that leaves in a coalesced batch gets a PhaseBatch span
// covering the buffered window.
func TestPhaseBatchSpans(t *testing.T) {
	sctx, tr := traceCtxFor(t, "sparc-v8", "sender")
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	if err := w.SetBatching(1<<16, 0); err != nil {
		t.Fatal(err)
	}
	const n = 3
	for i := 0; i < n; i++ {
		rec := f.NewRecord()
		rec.MustSetInt("seq", 0, int64(i))
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	spans := spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch)
	if len(spans) != 0 {
		t.Fatalf("%d batch spans before the flush; records are still pending", len(spans))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	spans = spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch)
	if len(spans) != n {
		t.Fatalf("got %d batch spans, want %d", len(spans), n)
	}
	for i, s := range spans {
		if s.Trace == 0 || s.Parent == 0 {
			t.Errorf("span %d: not parented on a sampled trace: %+v", i, s)
		}
		if s.Format != "tick" {
			t.Errorf("span %d: format %q", i, s.Format)
		}
		if s.Dur < 0 {
			t.Errorf("span %d: negative duration %v", i, s.Dur)
		}
	}
	// All records left in one flush: every span shares the batch window.
	for i := 1; i < len(spans); i++ {
		if !spans[i].Start.Equal(spans[0].Start) {
			t.Errorf("span %d starts at %v, span 0 at %v (one batch, one window)", i, spans[i].Start, spans[0].Start)
		}
	}
}

// TestPhaseBatchSpansSizeFlush pins the seq accounting: a size-triggered
// flush inside WriteRecord must drain exactly the records it flushed.
func TestPhaseBatchSpansSizeFlush(t *testing.T) {
	sctx, tr := traceCtxFor(t, "sparc-v8", "sender")
	f := batchFormat(t, sctx)
	// Traced records travel under the trace-extended format; size the
	// batch to hold exactly two of them.
	rec := f.NewRecord()
	twf, _, err := f.tracedFormat()
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w2 := sctx.NewWriter(&stream)
	if err := w2.SetBatching(2*twf.Size, 0); err != nil {
		t.Fatal(err)
	}
	base := len(spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch))
	for i := 0; i < 3; i++ {
		if err := w2.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Two records flushed by size; the third is pending.
	got := len(spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch)) - base
	if got != 2 {
		t.Fatalf("size flush drained %d batch spans, want 2", got)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	got = len(spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch)) - base
	if got != 3 {
		t.Fatalf("after final flush: %d batch spans, want 3", got)
	}
}

func TestBatchedWriterFlushOnDelay(t *testing.T) {
	sctx := ctxFor(t, "x86")
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	if err := w.SetBatching(1<<20, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}
	first := stream.Len()
	time.Sleep(3 * time.Millisecond)
	if err := w.Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}
	if stream.Len() == first {
		t.Error("age-triggered flush did not emit the pending records")
	}
}
