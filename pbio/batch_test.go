package pbio

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/flightrec"
	"repro/internal/telemetry/tracectx"
)

// batchFormat registers a small fixed-size format on ctx.
func batchFormat(t *testing.T, ctx *Context) *Format {
	t.Helper()
	f, err := ctx.Register("tick", F("seq", Int), F("v", Double))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBatchedWriteRoundTrip(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	if err := w.SetBatching(1<<16, 0); err != nil {
		t.Fatal(err)
	}
	const n = 6
	want := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		rec := f.NewRecord()
		rec.MustSetInt("seq", 0, int64(i))
		rec.MustSetFloat("v", 0, float64(i)*2.5)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, int64(i))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rctx := ctxFor(t, "x86")
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(&stream)
	defer r.Close()
	for i := 0; i < n; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !m.Batched() {
			t.Errorf("record %d: Batched()=false after coalesced send", i)
		}
		rec, err := m.Decode(rf)
		if err != nil {
			t.Fatal(err)
		}
		if seq, _ := rec.Int("seq", 0); seq != want[i] {
			t.Errorf("record %d: seq=%d", i, seq)
		}
		if v, _ := rec.Float("v", 0); v != float64(i)*2.5 {
			t.Errorf("record %d: v=%v", i, v)
		}
	}
}

func TestWriteBatchAPIRoundTrip(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	recs := make([]*Record, 4)
	for i := range recs {
		recs[i] = f.NewRecord()
		recs[i].MustSetInt("seq", 0, int64(i+10))
	}
	if err := w.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}

	rctx := ctxFor(t, "x86-64")
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(&stream)
	defer r.Close()
	for i := range recs {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		rec, err := m.Decode(rf)
		if err != nil {
			t.Fatal(err)
		}
		if seq, _ := rec.Int("seq", 0); seq != int64(i+10) {
			t.Errorf("record %d: seq=%d, want %d", i, seq, i+10)
		}
	}
}

func TestWriteBatchRejectsMixedFormats(t *testing.T) {
	ctx := ctxFor(t, "x86")
	f1 := batchFormat(t, ctx)
	f2, err := ctx.Register("other", F("x", Int))
	if err != nil {
		t.Fatal(err)
	}
	w := ctx.NewWriter(&bytes.Buffer{})
	err = w.WriteBatch([]*Record{f1.NewRecord(), f2.NewRecord()})
	if err == nil || !strings.Contains(err.Error(), "mixes formats") {
		t.Errorf("mixed-format batch: err=%v", err)
	}
}

// TestPhaseBatchSpans checks the batching-delay attribution: every
// sampled record that leaves in a coalesced batch gets a PhaseBatch span
// covering the buffered window.
func TestPhaseBatchSpans(t *testing.T) {
	sctx, tr := traceCtxFor(t, "sparc-v8", "sender")
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	if err := w.SetBatching(1<<16, 0); err != nil {
		t.Fatal(err)
	}
	const n = 3
	for i := 0; i < n; i++ {
		rec := f.NewRecord()
		rec.MustSetInt("seq", 0, int64(i))
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	spans := spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch)
	if len(spans) != 0 {
		t.Fatalf("%d batch spans before the flush; records are still pending", len(spans))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	spans = spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch)
	if len(spans) != n {
		t.Fatalf("got %d batch spans, want %d", len(spans), n)
	}
	for i, s := range spans {
		if s.Trace == 0 || s.Parent == 0 {
			t.Errorf("span %d: not parented on a sampled trace: %+v", i, s)
		}
		if s.Format != "tick" {
			t.Errorf("span %d: format %q", i, s.Format)
		}
		if s.Dur < 0 {
			t.Errorf("span %d: negative duration %v", i, s.Dur)
		}
	}
	// All records left in one flush: every span shares the batch window.
	for i := 1; i < len(spans); i++ {
		if !spans[i].Start.Equal(spans[0].Start) {
			t.Errorf("span %d starts at %v, span 0 at %v (one batch, one window)", i, spans[i].Start, spans[0].Start)
		}
	}
}

// TestPhaseBatchSpansSizeFlush pins the seq accounting: a size-triggered
// flush inside WriteRecord must drain exactly the records it flushed.
func TestPhaseBatchSpansSizeFlush(t *testing.T) {
	sctx, tr := traceCtxFor(t, "sparc-v8", "sender")
	f := batchFormat(t, sctx)
	// Traced records travel under the trace-extended format; size the
	// batch to hold exactly two of them.
	rec := f.NewRecord()
	twf, _, err := f.tracedFormat()
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w2 := sctx.NewWriter(&stream)
	if err := w2.SetBatching(2*twf.Size, 0); err != nil {
		t.Fatal(err)
	}
	base := len(spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch))
	for i := 0; i < 3; i++ {
		if err := w2.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Two records flushed by size; the third is pending.
	got := len(spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch)) - base
	if got != 2 {
		t.Fatalf("size flush drained %d batch spans, want 2", got)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	got = len(spansNamed(tr.Collector().Snapshot(), tracectx.PhaseBatch)) - base
	if got != 3 {
		t.Fatalf("after final flush: %d batch spans, want 3", got)
	}
}

// stageTicks writes n distinct tick records as one batch frame from a
// sparc-v8 (or given arch) sender and returns the raw stream.
func stageTicks(t *testing.T, arch string, n int) []byte {
	t.Helper()
	sctx := ctxFor(t, arch)
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	recs := make([]*Record, n)
	for i := range recs {
		recs[i] = f.NewRecord()
		recs[i].MustSetInt("seq", 0, int64(i))
		recs[i].MustSetFloat("v", 0, float64(i)*2.5)
	}
	if err := w.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	return stream.Bytes()
}

// checkTick asserts one decoded tick record carries its staged values.
func checkTick(t *testing.T, rec *Record, i int) {
	t.Helper()
	if seq, _ := rec.Int("seq", 0); seq != int64(i) {
		t.Errorf("record %d: seq=%d", i, seq)
	}
	if v, _ := rec.Float("v", 0); v != float64(i)*2.5 {
		t.Errorf("record %d: v=%v", i, v)
	}
}

// TestDecodeBatchRoundTrip drives the fused decode path end to end: a
// heterogeneous batch frame decodes with ONE DecodeBatch call, the frame
// is consumed, and per-record views carry the converted values.
func TestDecodeBatchRoundTrip(t *testing.T) {
	const n = 6
	stream := stageTicks(t, "sparc-v8", n)
	rctx := ctxFor(t, "x86")
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(bytes.NewReader(stream))
	defer r.Close()

	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	rb := rf.NewRecordBatch()
	got, err := m.DecodeBatch(rf, rb)
	if err != nil {
		t.Fatal(err)
	}
	if got != n || rb.Len() != n {
		t.Fatalf("DecodeBatch = %d records (Len %d), want %d", got, rb.Len(), n)
	}
	for i := 0; i < n; i++ {
		checkTick(t, rb.View(i), i)
	}
	// Owned copies survive the next decode; views do not.
	owned := rb.Record(2)
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("after consuming the batch: Read err=%v, want EOF", err)
	}
	checkTick(t, owned, 2)
}

// TestDecodeBatchMidFrame checks the hybrid iteration: records decoded
// singly first, then one DecodeBatch sweeping up the rest of the frame.
func TestDecodeBatchMidFrame(t *testing.T) {
	const n = 6
	stream := stageTicks(t, "sparc-v8", n)
	rctx := ctxFor(t, "x86")
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(bytes.NewReader(stream))
	defer r.Close()

	for i := 0; i < 2; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := m.Decode(rf)
		if err != nil {
			t.Fatal(err)
		}
		checkTick(t, rec, i)
	}
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	rb := rf.NewRecordBatch()
	got, err := m.DecodeBatch(rf, rb)
	if err != nil {
		t.Fatal(err)
	}
	if got != n-2 {
		t.Fatalf("mid-frame DecodeBatch = %d records, want %d", got, n-2)
	}
	for i := 0; i < got; i++ {
		checkTick(t, rb.View(i), i+2)
	}
}

// TestDecodeBatchSingleRecord pins the fallback: on an unbatched message
// DecodeBatch decodes one record through the ordinary engine, so callers
// can use it unconditionally on mixed streams.
func TestDecodeBatchSingleRecord(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	rec := f.NewRecord()
	rec.MustSetInt("seq", 0, 0)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}

	rctx := ctxFor(t, "x86")
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(&stream)
	defer r.Close()
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	rb := rf.NewRecordBatch()
	got, err := m.DecodeBatch(rf, rb)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("DecodeBatch on unbatched message = %d, want 1", got)
	}
	checkTick(t, rb.View(0), 0)
}

// TestDecodeBatchInterpreted checks the Interpreted-mode batch loop
// produces the same values as the fused engine.
func TestDecodeBatchInterpreted(t *testing.T) {
	const n = 5
	stream := stageTicks(t, "sparc-v8", n)
	rctx := ctxFor(t, "x86", WithConversion(Interpreted))
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(bytes.NewReader(stream))
	defer r.Close()
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	rb := rf.NewRecordBatch()
	got, err := m.DecodeBatch(rf, rb)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("DecodeBatch = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		checkTick(t, rb.View(i), i)
	}
}

// TestDecodeBatchHomogeneous pins the bulk-copy specialization through
// the public API: a layout-identical batch decodes correctly (one copy
// per frame inside the batch program).
func TestDecodeBatchHomogeneous(t *testing.T) {
	const n = 4
	stream := stageTicks(t, "x86", n)
	rctx := ctxFor(t, "x86")
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(bytes.NewReader(stream))
	defer r.Close()
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	rb := rf.NewRecordBatch()
	got, err := m.DecodeBatch(rf, rb)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("DecodeBatch = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		checkTick(t, rb.View(i), i)
	}
}

// TestDecodeBatchWrongFormat pins the format guard.
func TestDecodeBatchWrongFormat(t *testing.T) {
	stream := stageTicks(t, "sparc-v8", 2)
	rctx := ctxFor(t, "x86")
	rf := batchFormat(t, rctx)
	other, err := rctx.Register("other", F("x", Int))
	if err != nil {
		t.Fatal(err)
	}
	r := rctx.NewReader(bytes.NewReader(stream))
	defer r.Close()
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DecodeBatch(rf, other.NewRecordBatch()); err == nil {
		t.Error("DecodeBatch accepted a batch of the wrong format")
	}
}

// TestDecodeBatchFlightEvent checks that the first fused decode journals
// a DCGBatchCompile event carrying the fused shape in its arg words.
func TestDecodeBatchFlightEvent(t *testing.T) {
	stream := stageTicks(t, "sparc-v8", 3)
	fr := flightrec.New("batch-test", 64)
	rctx := ctxFor(t, "x86", WithFlightRecorder(fr))
	rf := batchFormat(t, rctx)
	r := rctx.NewReader(bytes.NewReader(stream))
	defer r.Close()
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DecodeBatch(rf, rf.NewRecordBatch()); err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer
	if _, err := fr.WriteTo(&journal); err != nil {
		t.Fatal(err)
	}
	events, err := flightrec.ReadJournal(&journal)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range events {
		if ev.Kind != flightrec.KindDCGBatchCompile {
			continue
		}
		found = true
		runs, words, steps := flightrec.UnpackBatchShape(ev.Arg2)
		if runs == 0 || words == 0 {
			t.Errorf("batch compile event shape runs=%d fusedWords=%d, want both > 0", runs, words)
		}
		if steps != 0 {
			t.Errorf("flat tick format needed %d step fallbacks", steps)
		}
	}
	if !found {
		t.Error("no DCGBatchCompile event in the flight journal")
	}
}

func TestBatchedWriterFlushOnDelay(t *testing.T) {
	sctx := ctxFor(t, "x86")
	f := batchFormat(t, sctx)
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	if err := w.SetBatching(1<<20, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}
	first := stream.Len()
	time.Sleep(3 * time.Millisecond)
	if err := w.Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}
	if stream.Len() == first {
		t.Error("age-triggered flush did not emit the pending records")
	}
}
