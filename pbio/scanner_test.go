package pbio

import (
	"bytes"
	"testing"
)

func TestScanner(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	sf, err := sctx.Register("s", F("n", Int), F("v", Double))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("s", F("n", Int), F("v", Double))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	for i := 0; i < 10; i++ {
		rec := sf.NewRecord()
		rec.MustSetInt("n", 0, int64(i))
		rec.MustSetFloat("v", 0, float64(i)*1.5)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}

	sc := rctx.NewScanner(&buf, rf)
	count := 0
	for sc.Next() {
		n, _ := sc.Record().Int("n", 0)
		v, _ := sc.Record().Float("v", 0)
		if n != int64(count) || v != float64(count)*1.5 {
			t.Errorf("record %d: n=%d v=%v", count, n, v)
		}
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("scanned %d records, want 10", count)
	}
	// Next after EOF stays false.
	if sc.Next() {
		t.Error("Next() true after EOF")
	}
}

func TestScannerError(t *testing.T) {
	ctx := ctxFor(t, "x86")
	f, err := ctx.Register("s", F("n", Int))
	if err != nil {
		t.Fatal(err)
	}
	sc := ctx.NewScanner(bytes.NewReader([]byte("garbage that is not pbio")), f)
	if sc.Next() {
		t.Error("Next() true on garbage")
	}
	if sc.Err() == nil {
		t.Error("Err() nil after garbage")
	}
	if sc.Next() {
		t.Error("Next() true after error")
	}
}
