package pbio

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/flightrec"
)

// Allocation pins for the four wire-path hot loops.  These are hard
// regression fences: the numbers encode the zero/near-zero-alloc
// guarantees the pooled transport and the conversion memos provide, and
// a change that re-introduces per-record allocation fails here before it
// shows up in benchmarks.  (AllocsPerRun disables parallelism, so the
// values are exact, not statistical.)

// allocFields is the benchmark record shape: ~10 KB of doubles.
var allocFields = []FieldSpec{
	F("node", Int), F("timestamp", Double), Array("values", Double, 1245),
}

func TestAllocsSteadyStateWrite(t *testing.T) {
	ctx := ctxFor(t, "sparc-v8")
	f, err := ctx.Register("mixed", allocFields...)
	if err != nil {
		t.Fatal(err)
	}
	w := ctx.NewWriter(io.Discard)
	rec := f.NewRecord()
	if err := w.Write(rec); err != nil { // meta + warm-up outside the measurement
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Errorf("steady-state Write allocates %.1f per record, want 0", got)
	}
}

func TestAllocsBatchedWrite(t *testing.T) {
	ctx := ctxFor(t, "sparc-v8")
	f, err := ctx.Register("tick", F("seq", Int), F("v", Double))
	if err != nil {
		t.Fatal(err)
	}
	w := ctx.NewWriter(io.Discard)
	if err := w.SetBatching(1<<16, 0); err != nil {
		t.Fatal(err)
	}
	rec := f.NewRecord()
	// Warm up: meta frame, batch buffer growth to steady-state capacity.
	for i := 0; i < 1<<16/f.Size()+2; i++ {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(500, func() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Errorf("batched Write allocates %.1f per record, want 0 (coalescing copy reuses the pending buffer)", got)
	}
}

// streamReader feeds the same encoded stream repeatedly, so a pin test
// can read an unbounded run of records through one Reader.
type streamReader struct {
	raw []byte
	off int
}

func (s *streamReader) Read(p []byte) (int, error) {
	if s.off == len(s.raw) {
		s.off = 0
	}
	n := copy(p, s.raw[s.off:])
	s.off += n
	return n, nil
}

func TestAllocsHomogeneousView(t *testing.T) {
	ctx := ctxFor(t, "x86")
	f, err := ctx.Register("mixed", allocFields...)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w := ctx.NewWriter(&stream)
	// One meta frame, then a long run of records: the steady state is
	// data frames only.
	for i := 0; i < 4; i++ {
		if err := w.Write(f.NewRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Write(f.NewRecord()); err != nil {
		t.Fatal(err)
	}

	r := ctx.NewReader(&streamReader{raw: stream.Bytes()})
	defer r.Close()
	if _, err := r.Read(); err != nil { // consume meta + first record
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		rec, ok, err := m.View(f)
		if err != nil || !ok {
			t.Fatalf("View: %v %v", ok, err)
		}
		_ = rec
	})
	// Budget: the returned *Record view is the only per-message
	// allocation left on this path.
	const budget = 1
	if got > budget {
		t.Errorf("homogeneous view costs %.1f allocs per record, budget %d", got, budget)
	}
}

func TestAllocsDCGDecode(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	sf, err := sctx.Register("mixed", allocFields...)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	for i := 0; i < 4; i++ {
		if err := w.Write(sf.NewRecord()); err != nil {
			t.Fatal(err)
		}
	}

	rctx := ctxFor(t, "x86")
	rf, err := rctx.Register("mixed", allocFields...)
	if err != nil {
		t.Fatal(err)
	}
	out := rf.NewRecord()
	r := rctx.NewReader(&streamReader{raw: stream.Bytes()})
	defer r.Close()
	// First read decodes meta, builds and memoizes the DCG program.
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DecodeInto(rf, out); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.DecodeInto(rf, out); err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Errorf("steady-state DCG decode costs %.1f allocs per record, want 0 (memoized program, caller-owned output)", got)
	}
}

// TestAllocsBatchDecode pins the fused batch decode path at zero
// allocations per record: one Read plus one DecodeBatch consumes a whole
// 64-record heterogeneous batch frame, reusing the RecordBatch buffer,
// the reader's message, the memoized batch program and the pooled
// receive buffer.
func TestAllocsBatchDecode(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	sf, err := sctx.Register("tick", F("seq", Int), F("v", Double))
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	const batch = 64
	recs := make([]*Record, batch)
	for i := range recs {
		recs[i] = sf.NewRecord()
		recs[i].MustSetInt("seq", 0, int64(i))
	}
	if err := w.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}

	rctx := ctxFor(t, "x86")
	rf, err := rctx.Register("tick", F("seq", Int), F("v", Double))
	if err != nil {
		t.Fatal(err)
	}
	rb := rf.NewRecordBatch()
	r := rctx.NewReader(&streamReader{raw: stream.Bytes()})
	defer r.Close()
	// Warm up: meta decode, batch-program compile + memo, RecordBatch
	// buffer growth to frame size.
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := m.DecodeBatch(rf, rb); err != nil || n != batch {
		t.Fatalf("warm-up DecodeBatch = %d, %v", n, err)
	}
	got := testing.AllocsPerRun(200, func() {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		n, err := m.DecodeBatch(rf, rb)
		if err != nil {
			t.Fatal(err)
		}
		if n != batch {
			t.Fatalf("DecodeBatch = %d, want %d", n, batch)
		}
	})
	if got > 0 {
		t.Errorf("steady-state batch decode costs %.1f allocs per frame (%d records), want 0", got, batch)
	}
}

// TestAllocsFlightEmit pins the flight recorder's own hot path: Emit is
// a mutex hold plus fixed-size byte stores into a preallocated slab, so
// it must allocate nothing — that is what makes it legal inside evict
// callbacks and connection handlers.
func TestAllocsFlightEmit(t *testing.T) {
	rec := flightrec.New("alloc-test", 64)
	got := testing.AllocsPerRun(500, func() {
		rec.Emit(flightrec.KindQueueEvict, "tick", 0xabc, 3, 1)
	})
	if got > 0 {
		t.Errorf("Emit allocates %.1f per event, want 0", got)
	}
}

// TestAllocsSteadyStateWriteWithFlight re-runs the steady-state write
// pin with a flight recorder attached to the context: instrumentation
// must not buy events with per-record allocations on the wire path.
func TestAllocsSteadyStateWriteWithFlight(t *testing.T) {
	rec := flightrec.New("alloc-test", 64)
	ctx := ctxFor(t, "sparc-v8", WithFlightRecorder(rec))
	f, err := ctx.Register("mixed", allocFields...)
	if err != nil {
		t.Fatal(err)
	}
	w := ctx.NewWriter(io.Discard)
	r := f.NewRecord()
	if err := w.Write(r); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Errorf("steady-state Write with flight recorder allocates %.1f per record, want 0", got)
	}
	if rec.Seq() == 0 {
		t.Error("context with a flight recorder journaled no events (expected MetaRegister at least)")
	}
}
