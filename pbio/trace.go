package pbio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/convert"
	"repro/internal/telemetry/tracectx"
	"repro/internal/wire"
)

// Cross-hop tracing.
//
// Tracing context travels as an ordinary trailing record field
// (wire.TraceFieldName), added by re-laying-out the format with one
// extra field — PBIO's type extension applied to itself.  A sampled
// record goes on the wire under the extended format; receivers that
// know nothing about tracing match fields by name and decode the record
// exactly as if it were untraced, while tracing-aware hops read the
// trace ID, the sender's root span and the send timestamp straight out
// of the native bytes and record their own per-phase spans locally.
// Nothing is rewritten in flight — a relay forwards traced frames
// verbatim — and a multi-process trace is reassembled offline by
// joining each process's exported spans on the trace ID (cmd/pbio-trace
// or Perfetto over /debug/trace.json).
//
// With tracing disabled (the default) the send path costs one nil-check
// branch and the receive path one boolean test per message; head-based
// sampling (WithTracing's rate) bounds the cost when enabled.

// WithTracing enables cross-hop tracing with head-based sampling: each
// written record is traced with probability rate (clamped to [0,1]).
// The tracer is named after the running binary; use WithTracer to
// control the process name or share a tracer across contexts.
//
// When the context also has telemetry (WithTelemetry), the tracer's
// span and sampling counters are exported on the registry and finished
// spans are served as Chrome trace-event JSON at /debug/trace.json on
// the registry's HTTP surface.
func WithTracing(rate float64) Option {
	return func(c *Context) error {
		c.tracer = tracectx.New(defaultProcName(), rate, 0)
		return nil
	}
}

// WithTracer attaches a caller-built tracer (see tracectx.New), for
// explicit process naming, shared collectors, or custom capacities.
func WithTracer(t *tracectx.Tracer) Option {
	return func(c *Context) error {
		c.tracer = t
		return nil
	}
}

// Tracer returns the context's tracer (nil when tracing is off).
func (c *Context) Tracer() *tracectx.Tracer { return c.tracer }

// defaultProcName identifies this process in exported spans.
func defaultProcName() string {
	return fmt.Sprintf("%s/%d", filepath.Base(os.Args[0]), os.Getpid())
}

// errUntraceable marks formats that cannot carry a trace field (they
// already use the reserved name).
var errUntraceable = errors.New("pbio: format already carries a " + wire.TraceFieldName + " field")

// tracedFormat returns the trace-extended layout of f and the byte
// offset of its trace field, building and caching both on first use.
func (f *Format) tracedFormat() (*wire.Format, int, error) {
	f.traceOnce.Do(func() {
		f.traceOff = -1
		if f.wf.FieldByName(wire.TraceFieldName) != nil {
			f.traceErr = errUntraceable
			return
		}
		twf, err := wire.Layout(wire.TraceSchema(f.wf.Schema()), &f.ctx.arch)
		if err != nil {
			f.traceErr = fmt.Errorf("pbio: extending format %q with trace field: %w", f.wf.Name, err)
			return
		}
		off := wire.TraceFieldOffset(twf)
		if off < 0 {
			f.traceErr = fmt.Errorf("pbio: extended format %q lost its trace field", f.wf.Name)
			return
		}
		f.traceWF = twf
		f.traceOff = off
	})
	return f.traceWF, f.traceOff, f.traceErr
}

// writeTraced transmits one sampled record under the trace-extended
// format, recording the sender-side phase spans (extend, frame, and the
// covering send root).
func (w *Writer) writeTraced(rec *Record, tr *tracectx.Tracer) error {
	t0 := time.Now()
	f := rec.fmt
	twf, off, err := f.tracedFormat()
	if err != nil {
		// The format cannot be extended; send untraced rather than fail
		// a write that would have succeeded without tracing.
		if err := w.tw.WriteRecord(f.wf, rec.rec.Buf); err != nil {
			return err
		}
		f.met.sent.Inc()
		return nil
	}
	traceID, root := tr.NewID(), tr.NewID()
	if cap(w.traceBuf) < twf.Size {
		w.traceBuf = make([]byte, twf.Size)
	}
	buf := w.traceBuf[:twf.Size]
	n := copy(buf, rec.rec.Buf)
	clear(buf[n:])
	t1 := time.Now()
	wire.PutTraceContext(buf, twf.Order, off, wire.TraceContext{
		TraceID:    traceID,
		ParentSpan: root,
		SendUnixNs: uint64(t1.UnixNano()),
	})
	if w.batching {
		// Enroll before the write: a size-triggered flush inside
		// WriteRecord must find this record in pendingTraced so its
		// batch span is drained with the batch it actually left in (see
		// noteBatchFlush; seq numbering keeps a format-change flush of
		// the *previous* batch from draining it early).
		w.pendingTraced = append(w.pendingTraced, pendingTrace{
			seq: w.writeSeq + 1, trace: traceID, parent: root, fmtName: f.wf.Name,
		})
	}
	err = w.tw.WriteRecord(twf, buf)
	t2 := time.Now()
	if err != nil {
		return err
	}
	if w.batching {
		w.writeSeq++
	}
	f.met.sent.Inc()
	name := f.wf.Name
	tr.Record(tracectx.Span{Trace: traceID, ID: tr.NewID(), Parent: root,
		Name: tracectx.PhaseExtend, Start: t0, Dur: t1.Sub(t0), Format: name})
	tr.Record(tracectx.Span{Trace: traceID, ID: tr.NewID(), Parent: root,
		Name: tracectx.PhaseFrame, Start: t1, Dur: t2.Sub(t1), Format: name})
	tr.Record(tracectx.Span{Trace: traceID, ID: root,
		Name: tracectx.PhaseSend, Start: t0, Dur: t2.Sub(t0), Format: name})
	return nil
}

// noteBatchFlush is the transport flush hook (installed by SetBatching
// when tracing is on): records flushed, payload bytes, and the
// wall-clock window from first buffering to the flush.  Every sampled
// record that left in this batch gets a PhaseBatch span covering that
// window — the batching delay the record actually experienced, the cost
// side of the header-amortization trade.
func (w *Writer) noteBatchFlush(records, payloadBytes int, start, end time.Time) {
	w.flushedSeq += uint64(records)
	tr := w.ctx.tracer
	drained := 0
	for _, p := range w.pendingTraced {
		if p.seq > w.flushedSeq {
			break
		}
		drained++
		if tr == nil {
			continue
		}
		tr.Record(tracectx.Span{Trace: p.trace, ID: tr.NewID(), Parent: p.parent,
			Name: tracectx.PhaseBatch, Start: start, Dur: end.Sub(start), Format: p.fmtName})
	}
	if drained > 0 {
		rest := copy(w.pendingTraced, w.pendingTraced[drained:])
		w.pendingTraced = w.pendingTraced[:rest]
	}
}

// noteArrival inspects a just-received message for wire-level trace
// context and, when present, records the wire-phase span (send stamp →
// arrival) and arms the message's decode-phase tracing.
func (r *Reader) noteArrival(m *Message, tr *tracectx.Tracer) {
	wf := m.msg.Format
	off, ok := r.traceOffs[wf]
	if !ok {
		if r.traceOffs == nil {
			r.traceOffs = make(map[*wire.Format]int)
		}
		off = wire.TraceFieldOffset(wf)
		r.traceOffs[wf] = off
	}
	if off < 0 {
		return
	}
	tc, ok := wire.GetTraceContext(m.msg.Data, wf.Order, off)
	if !ok || tc.TraceID == 0 {
		return
	}
	arrival := m.msg.Arrival
	if arrival.IsZero() {
		arrival = time.Now()
	}
	m.tc = tc
	m.traced = true
	sent := time.Unix(0, int64(tc.SendUnixNs))
	dur := arrival.Sub(sent)
	if dur < 0 {
		// Clock skew between sender and receiver hosts; keep the span
		// but do not invent negative time.
		dur = 0
	}
	tr.Record(tracectx.Span{Trace: tc.TraceID, ID: tr.NewID(), Parent: tc.ParentSpan,
		Name: tracectx.PhaseWire, Start: sent, Dur: dur, Format: wf.Name})
}

// TraceID returns the wire trace identifier riding the message, if the
// sender sampled it and this context has tracing enabled.
func (m *Message) TraceID() (uint64, bool) {
	return m.tc.TraceID, m.traced
}

// recSpan records one receiver-side decode-phase span for a traced
// message.
func (m *Message) recSpan(name string, start, end time.Time, path string) {
	tr := m.ctx.tracer
	tr.Record(tracectx.Span{Trace: m.tc.TraceID, ID: tr.NewID(), Parent: m.tc.ParentSpan,
		Name: name, Start: start, Dur: end.Sub(start), Format: m.msg.Format.Name, Path: path})
}

// viewTraced is the zero-copy path for sampled messages.  A traced
// record travels under the trace-extended format, so the plain layout
// test in View can never match; instead the receiver checks the message
// against its own trace-extended variant of the expected format — when
// those agree, the base record is a clean prefix of the wire bytes
// (appending a field never moves earlier offsets) and is viewed in
// place exactly like an untraced homogeneous record.
func (m *Message) viewTraced(expected *Format) (*Record, bool, error) {
	twf, _, err := expected.tracedFormat()
	if err != nil || !wire.SameLayout(m.msg.Format, twf) {
		return nil, false, nil
	}
	t0 := time.Now()
	rec, err := expected.view(m.msg.Data[:expected.wf.Size])
	if err != nil {
		return nil, false, err
	}
	expected.met.decZero.Inc()
	m.recSpan(tracectx.PhaseView, t0, time.Now(), "zero_copy")
	return rec, true, nil
}

// convertTraced mirrors Message.convert with per-phase span recording:
// match covers the plan/program lookup (building it on a cache miss),
// convert covers the per-record execution.  Metric observations match
// the untraced path so sampling does not skew the histograms.
func (m *Message) convertTraced(expected *Format, dst []byte) error {
	ctx := m.ctx
	switch ctx.mode {
	case Interpreted:
		t0 := time.Now()
		plan, err := ctx.plan(m.msg.Format, expected.wf)
		if err != nil {
			return err
		}
		t1 := time.Now()
		m.recSpan(tracectx.PhaseMatch, t0, t1, "interp")
		it := convert.NewInterp(plan)
		if ctx.met.enabled {
			it.SetMetrics(ctx.convMet)
		}
		err = it.Convert(dst, m.msg.Data)
		t2 := time.Now()
		if err != nil {
			return err
		}
		expected.met.decInterp.Inc()
		ctx.met.interpNanos.Observe(t2.Sub(t1).Nanoseconds())
		m.recSpan(tracectx.PhaseConv, t1, t2, "interp")
		return nil
	default:
		t0 := time.Now()
		prog, err := ctx.cache.Get(m.msg.Format, expected.wf)
		if err != nil {
			return err
		}
		t1 := time.Now()
		m.recSpan(tracectx.PhaseMatch, t0, t1, "dcg")
		err = prog.Convert(dst, m.msg.Data)
		t2 := time.Now()
		if err != nil {
			return err
		}
		expected.met.decDCG.Inc()
		ctx.met.dcgNanos.Observe(t2.Sub(t1).Nanoseconds())
		m.recSpan(tracectx.PhaseConv, t1, t2, "dcg")
		return nil
	}
}
