package pbio

import (
	"bytes"
	"testing"
)

func particleFields(n int) []FieldSpec {
	return []FieldSpec{
		Struct("hdr",
			F("step", Int),
			F("t", Double),
			Array("label", Char, 8),
		),
		F("count", Int),
		StructArray("p", n,
			F("id", Int),
			Struct("pos", F("x", Double), F("y", Double), F("z", Double)),
			F("charge", Float),
		),
	}
}

func fillParticles(t *testing.T, rec *Record, n int) {
	t.Helper()
	hdr := rec.MustSub("hdr", 0)
	hdr.MustSetInt("step", 0, 7)
	hdr.MustSetFloat("t", 0, 0.125)
	hdr.MustSetString("label", "run-a")
	rec.MustSetInt("count", 0, int64(n))
	for e := 0; e < n; e++ {
		p := rec.MustSub("p", e)
		p.MustSetInt("id", 0, int64(100+e))
		pos := p.MustSub("pos", 0)
		pos.MustSetFloat("x", 0, float64(e)+0.25)
		pos.MustSetFloat("y", 0, float64(e)+0.5)
		pos.MustSetFloat("z", 0, float64(e)+0.75)
		p.MustSetFloat("charge", 0, -1.5)
	}
}

func checkParticles(t *testing.T, rec *Record, n int) {
	t.Helper()
	hdr := rec.MustSub("hdr", 0)
	if v, _ := hdr.Int("step", 0); v != 7 {
		t.Errorf("hdr.step = %d", v)
	}
	if s, _ := hdr.String("label"); s != "run-a" {
		t.Errorf("hdr.label = %q", s)
	}
	for e := 0; e < n; e++ {
		p := rec.MustSub("p", e)
		if v, _ := p.Int("id", 0); v != int64(100+e) {
			t.Errorf("p[%d].id = %d", e, v)
		}
		pos := p.MustSub("pos", 0)
		if v, _ := pos.Float("y", 0); v != float64(e)+0.5 {
			t.Errorf("p[%d].pos.y = %v", e, v)
		}
		if v, _ := p.Float("charge", 0); v != -1.5 {
			t.Errorf("p[%d].charge = %v", e, v)
		}
	}
}

func TestNestedHeterogeneousExchange(t *testing.T) {
	for _, mode := range []ConvMode{Generated, Interpreted} {
		t.Run(mode.String(), func(t *testing.T) {
			sctx := ctxFor(t, "sparc-v8")
			rctx := ctxFor(t, "x86", WithConversion(mode))
			sf, err := sctx.Register("particles", particleFields(4)...)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := rctx.Register("particles", particleFields(4)...)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			w := sctx.NewWriter(&buf)
			rec := sf.NewRecord()
			fillParticles(t, rec, 4)
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
			m, err := rctx.NewReader(&buf).Read()
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Decode(rf)
			if err != nil {
				t.Fatal(err)
			}
			checkParticles(t, got, 4)
		})
	}
}

func TestNestedReflectionInfo(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	sf, err := sctx.Register("particles", particleFields(2)...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(sf.NewRecord()); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	fields := m.Fields()
	if !fields[0].Struct || len(fields[0].Fields) != 3 {
		t.Fatalf("hdr FieldInfo = %+v", fields[0])
	}
	pInfo := fields[2]
	if !pInfo.Struct || pInfo.Count != 2 {
		t.Fatalf("p FieldInfo = %+v", pInfo)
	}
	if !pInfo.Fields[1].Struct || pInfo.Fields[1].Fields[0].Name != "x" {
		t.Fatalf("pos FieldInfo = %+v", pInfo.Fields[1])
	}
	// Re-register from Spec and decode — no a-priori knowledge needed.
	specs := make([]FieldSpec, len(fields))
	for i, fi := range fields {
		specs[i] = fi.Spec()
	}
	local, err := rctx.Register(m.FormatName(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Decode(local); err != nil {
		t.Fatal(err)
	}
}

func TestNestedStructReflectBinding(t *testing.T) {
	type Vec3 struct{ X, Y, Z float64 }
	type Particle struct {
		ID     int32
		Pos    Vec3
		Charge float32
	}
	type Frame struct {
		Step int32
		P    [3]Particle
	}
	sctx := ctxFor(t, "sparc-v9-64")
	rctx := ctxFor(t, "x86")
	sf, err := sctx.RegisterStruct("frame", Frame{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.RegisterStruct("frame", Frame{})
	if err != nil {
		t.Fatal(err)
	}
	in := Frame{Step: 3}
	for i := range in.P {
		in.P[i] = Particle{
			ID:     int32(i),
			Pos:    Vec3{X: float64(i), Y: float64(i) * 2, Z: float64(i) * 3},
			Charge: 0.5,
		}
	}
	rec, err := sf.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	var out Frame
	if err := m.DecodeStruct(rf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("nested struct round trip:\n in: %+v\nout: %+v", in, out)
	}
}

func TestNestedTypeExtensionInsideStruct(t *testing.T) {
	// The sender's nested struct gained a field; the receiver's nested
	// struct hasn't.  By-name matching recurses: the extra nested field
	// is ignored.
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	sf, err := sctx.Register("msg",
		Struct("inner", F("a", Int), F("new_b", Double), F("c", Int)),
	)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("msg",
		Struct("inner", F("a", Int), F("c", Int)),
	)
	if err != nil {
		t.Fatal(err)
	}
	rec := sf.NewRecord()
	inner := rec.MustSub("inner", 0)
	inner.MustSetInt("a", 0, 1)
	inner.MustSetFloat("new_b", 0, 9.5)
	inner.MustSetInt("c", 0, 3)
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Decode(rf)
	if err != nil {
		t.Fatal(err)
	}
	gi := got.MustSub("inner", 0)
	if v, _ := gi.Int("a", 0); v != 1 {
		t.Errorf("inner.a = %d", v)
	}
	if v, _ := gi.Int("c", 0); v != 3 {
		t.Errorf("inner.c = %d", v)
	}
}

func TestNestedRegisterErrors(t *testing.T) {
	ctx := ctxFor(t, "x86")
	if _, err := ctx.Register("bad", Struct("s")); err == nil {
		t.Error("empty nested struct accepted")
	}
	if _, err := ctx.Register("bad", Struct("s", FieldSpec{Name: "x", Type: Type(99), Count: 1})); err == nil {
		t.Error("invalid nested type accepted")
	}
}
