package pbio

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"testing"

	"repro/internal/abi"
)

// archNames enumerates every modelled architecture for matrix tests.
func archNames() []string {
	names := make([]string, len(abi.All))
	for i, a := range abi.All {
		names[i] = a.Name
	}
	return names
}

// TestE2EMatrixOverTCP exchanges records between every pair of modelled
// architectures over a real TCP loopback connection, in both conversion
// modes, verifying every field value — the full-system integration test.
func TestE2EMatrixOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix e2e is slow; run without -short")
	}
	names := archNames()
	for _, from := range names {
		for _, to := range names {
			from, to := from, to
			t.Run(from+"->"+to, func(t *testing.T) {
				t.Parallel()
				runExchange(t, from, to, Generated)
			})
		}
	}
	// Interpreted mode: one representative heterogeneous pair.
	t.Run("interp/sparc-v8->x86", func(t *testing.T) {
		runExchange(t, "sparc-v8", "x86", Interpreted)
	})
}

func runExchange(t *testing.T, fromArch, toArch string, mode ConvMode) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	defer ln.Close()

	const records = 20
	fields := []FieldSpec{
		F("seq", Int),
		F("ts", Double),
		F("big", LongLong),
		F("ul", ULong),
		Array("tag", Char, 12),
		F("small", Short),
		Array("data", Double, 17),
		Struct("inner", F("a", Int), Array("v", Float, 3)),
	}

	errc := make(chan error, 1)
	go func() {
		errc <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			sctx, err := NewContext(WithArch(fromArch))
			if err != nil {
				return err
			}
			f, err := sctx.Register("msg", fields...)
			if err != nil {
				return err
			}
			w := sctx.NewWriter(conn)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < records; i++ {
				rec := f.NewRecord()
				rec.MustSetInt("seq", 0, int64(i))
				rec.MustSetFloat("ts", 0, float64(i)*0.001)
				rec.MustSetInt("big", 0, int64(rng.Uint64()>>1))
				rec.MustSetInt("ul", 0, int64(rng.Uint32()))
				rec.MustSetString("tag", fmt.Sprintf("rec-%d", i))
				rec.MustSetInt("small", 0, int64(i-10))
				for e := 0; e < 17; e++ {
					rec.MustSetFloat("data", e, float64(i*17+e)*0.5)
				}
				inner := rec.MustSub("inner", 0)
				inner.MustSetInt("a", 0, int64(i*3))
				for e := 0; e < 3; e++ {
					inner.MustSetFloat("v", e, float64(e)+0.25)
				}
				if err := w.Write(rec); err != nil {
					return err
				}
			}
			return nil
		}()
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rctx, err := NewContext(WithArch(toArch), WithConversion(mode))
	if err != nil {
		t.Fatal(err)
	}
	f, err := rctx.Register("msg", fields...)
	if err != nil {
		t.Fatal(err)
	}
	r := rctx.NewReader(conn)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < records; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		rec, err := m.Decode(f)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if v, _ := rec.Int("seq", 0); v != int64(i) {
			t.Fatalf("record %d: seq = %d", i, v)
		}
		if v, _ := rec.Float("ts", 0); v != float64(i)*0.001 {
			t.Fatalf("record %d: ts = %v", i, v)
		}
		wantBig := int64(rng.Uint64() >> 1)
		wantUL := int64(rng.Uint32())
		if v, _ := rec.Int("big", 0); v != wantBig {
			t.Fatalf("record %d: big = %d, want %d", i, v, wantBig)
		}
		// ULong may narrow to 4 bytes on ILP32 targets; values fit 32
		// bits so they must survive.
		if v, _ := rec.Int("ul", 0); v != wantUL {
			t.Fatalf("record %d: ul = %d, want %d", i, v, wantUL)
		}
		if s, _ := rec.String("tag"); s != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d: tag = %q", i, s)
		}
		if v, _ := rec.Int("small", 0); v != int64(i-10) {
			t.Fatalf("record %d: small = %d", i, v)
		}
		for e := 0; e < 17; e++ {
			if v, _ := rec.Float("data", e); v != float64(i*17+e)*0.5 {
				t.Fatalf("record %d: data[%d] = %v", i, e, v)
			}
		}
		inner := rec.MustSub("inner", 0)
		if v, _ := inner.Int("a", 0); v != int64(i*3) {
			t.Fatalf("record %d: inner.a = %d", i, v)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("after last record: %v, want EOF", err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
