package pbio

import (
	"fmt"

	"repro/internal/native"
)

// Record is a native record image: the exact bytes a C program on the
// context's architecture would hold in memory, and the exact bytes a
// Writer puts on the wire.  Accessors read and write fields honoring the
// format's layout and byte order.
type Record struct {
	fmt *Format
	// rec is embedded by value: a native.Record is two words, and keeping
	// it inline halves the allocations of NewRecord, View and Sub.
	rec native.Record
}

// NewRecord allocates a zeroed record of this format.
func (f *Format) NewRecord() *Record {
	return &Record{fmt: f, rec: native.Record{Format: f.wf, Buf: make([]byte, f.wf.Size)}}
}

// Format returns the record's format.
func (r *Record) Format() *Format { return r.fmt }

// Bytes returns the record's native image.  Mutating it mutates the
// record.
func (r *Record) Bytes() []byte { return r.rec.Buf }

// Clone returns an independent copy of the record.
func (r *Record) Clone() *Record {
	return &Record{fmt: r.fmt, rec: *r.rec.Clone()}
}

// SetInt stores a signed or unsigned integer into element i of the named
// field, truncating to the field width like a C assignment.
func (r *Record) SetInt(name string, i int, v int64) error { return r.rec.SetInt(name, i, v) }

// Int loads element i of the named integer field.
func (r *Record) Int(name string, i int) (int64, error) { return r.rec.Int(name, i) }

// SetFloat stores a floating-point value into element i of the named
// field.
func (r *Record) SetFloat(name string, i int, v float64) error { return r.rec.SetFloat(name, i, v) }

// Float loads element i of the named floating-point field.
func (r *Record) Float(name string, i int) (float64, error) { return r.rec.Float(name, i) }

// SetString stores s into a char-array field, NUL-padded and truncated to
// the field length.
func (r *Record) SetString(name, s string) error { return r.rec.SetString(name, s) }

// String loads a char-array field, stopping at the first NUL.
func (r *Record) String(name string) (string, error) { return r.rec.String(name) }

// MustSetInt is SetInt that panics on error.
func (r *Record) MustSetInt(name string, i int, v int64) { r.rec.MustSetInt(name, i, v) }

// MustSetFloat is SetFloat that panics on error.
func (r *Record) MustSetFloat(name string, i int, v float64) { r.rec.MustSetFloat(name, i, v) }

// MustSetString is SetString that panics on error.
func (r *Record) MustSetString(name, s string) { r.rec.MustSetString(name, s) }

// Sub returns element i of a nested structure field as a Record view:
// reads and writes through it access the containing record's bytes
// directly.
func (r *Record) Sub(name string, i int) (*Record, error) {
	nr, err := r.rec.Sub(name, i)
	if err != nil {
		return nil, err
	}
	return &Record{fmt: &Format{ctx: r.fmt.ctx, wf: nr.Format}, rec: *nr}, nil
}

// MustSub is Sub that panics on error.
func (r *Record) MustSub(name string, i int) *Record {
	s, err := r.Sub(name, i)
	if err != nil {
		panic(err)
	}
	return s
}

// Map renders the record as nested Go maps, keyed by field name — the
// convenient form for generic consumers (monitors, dashboards, loggers)
// that discovered the format at run time.  Scalars map to int64/uint64/
// float64/string; arrays to slices; nested structures to []map or a
// single map for scalar struct fields.
func (r *Record) Map() map[string]any {
	out := make(map[string]any, len(r.fmt.wf.Fields))
	for _, fi := range fieldInfos(r.fmt.wf) {
		out[fi.Name] = r.fieldValue(fi)
	}
	return out
}

func (r *Record) fieldValue(fi FieldInfo) any {
	switch {
	case fi.Struct:
		if fi.Count == 1 {
			return r.MustSub(fi.Name, 0).Map()
		}
		subs := make([]map[string]any, fi.Count)
		for i := range subs {
			subs[i] = r.MustSub(fi.Name, i).Map()
		}
		return subs
	case fi.Type == Char:
		s, _ := r.String(fi.Name)
		return s
	case fi.Type == Float || fi.Type == Double:
		if fi.Count == 1 {
			v, _ := r.Float(fi.Name, 0)
			return v
		}
		vs := make([]float64, fi.Count)
		for i := range vs {
			vs[i], _ = r.Float(fi.Name, i)
		}
		return vs
	case fi.Type == UShort || fi.Type == UInt || fi.Type == ULong || fi.Type == ULongLong:
		if fi.Count == 1 {
			v, _ := r.Int(fi.Name, 0)
			return uint64(v)
		}
		vs := make([]uint64, fi.Count)
		for i := range vs {
			v, _ := r.Int(fi.Name, i)
			vs[i] = uint64(v)
		}
		return vs
	default:
		if fi.Count == 1 {
			v, _ := r.Int(fi.Name, 0)
			return v
		}
		vs := make([]int64, fi.Count)
		for i := range vs {
			vs[i], _ = r.Int(fi.Name, i)
		}
		return vs
	}
}

// view wraps a buffer as a record of this format without copying.
func (f *Format) view(buf []byte) (*Record, error) {
	if len(buf) < f.wf.Size {
		return nil, fmt.Errorf("pbio: buffer of %d bytes too small for %d-byte format %q",
			len(buf), f.wf.Size, f.wf.Name)
	}
	return &Record{fmt: f, rec: native.Record{Format: f.wf, Buf: buf[:f.wf.Size]}}, nil
}
