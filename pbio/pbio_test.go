package pbio

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// mixedFields is the paper's mixed-field record shape.
func mixedFields() []FieldSpec {
	return []FieldSpec{
		F("node", Int),
		F("timestamp", Double),
		F("iter", Long),
		Array("tag", Char, 16),
		F("residual", Float),
		F("flags", UInt),
		Array("values", Double, 8),
	}
}

func ctxFor(t *testing.T, arch string, opts ...Option) *Context {
	t.Helper()
	ctx, err := NewContext(append([]Option{WithArch(arch)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func fillMixed(t *testing.T, rec *Record) {
	t.Helper()
	rec.MustSetInt("node", 0, 12)
	rec.MustSetFloat("timestamp", 0, 1234.5)
	rec.MustSetInt("iter", 0, -9)
	rec.MustSetString("tag", "probe-7")
	rec.MustSetFloat("residual", 0, 0.25)
	rec.MustSetInt("flags", 0, 3)
	for i := 0; i < 8; i++ {
		rec.MustSetFloat("values", i, float64(i)*1.5)
	}
}

func checkMixed(t *testing.T, rec *Record) {
	t.Helper()
	if v, _ := rec.Int("node", 0); v != 12 {
		t.Errorf("node = %d", v)
	}
	if v, _ := rec.Float("timestamp", 0); v != 1234.5 {
		t.Errorf("timestamp = %v", v)
	}
	if v, _ := rec.Int("iter", 0); v != -9 {
		t.Errorf("iter = %d", v)
	}
	if v, _ := rec.String("tag"); v != "probe-7" {
		t.Errorf("tag = %q", v)
	}
	if v, _ := rec.Float("residual", 0); v != 0.25 {
		t.Errorf("residual = %v", v)
	}
	if v, _ := rec.Int("flags", 0); v != 3 {
		t.Errorf("flags = %d", v)
	}
	for i := 0; i < 8; i++ {
		if v, _ := rec.Float("values", i); v != float64(i)*1.5 {
			t.Errorf("values[%d] = %v", i, v)
		}
	}
}

func TestHeterogeneousExchange(t *testing.T) {
	// The paper's canonical scenario: a sparc writer, an x86 reader.
	for _, mode := range []ConvMode{Generated, Interpreted} {
		t.Run(mode.String(), func(t *testing.T) {
			sctx := ctxFor(t, "sparc-v8")
			rctx := ctxFor(t, "x86", WithConversion(mode))

			sf, err := sctx.Register("mixed", mixedFields()...)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := rctx.Register("mixed", mixedFields()...)
			if err != nil {
				t.Fatal(err)
			}
			if sf.Size() == rf.Size() {
				t.Fatalf("sparc and x86 sizes equal (%d); heterogeneity not simulated", sf.Size())
			}

			var buf bytes.Buffer
			w := sctx.NewWriter(&buf)
			rec := sf.NewRecord()
			fillMixed(t, rec)
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}

			r := rctx.NewReader(&buf)
			m, err := r.Read()
			if err != nil {
				t.Fatal(err)
			}
			if m.FormatName() != "mixed" {
				t.Errorf("format name %q", m.FormatName())
			}
			if m.SameLayout(rf) {
				t.Error("sparc layout reported same as x86")
			}
			got, err := m.Decode(rf)
			if err != nil {
				t.Fatal(err)
			}
			checkMixed(t, got)
		})
	}
}

func TestHomogeneousZeroCopyView(t *testing.T) {
	ctx := ctxFor(t, "x86")
	f, err := ctx.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := ctx.NewWriter(&buf)
	rec := f.NewRecord()
	fillMixed(t, rec)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := ctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	view, ok, err := m.View(f)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("homogeneous exchange did not offer a zero-copy view")
	}
	checkMixed(t, view)
}

func TestViewRefusedWhenConversionNeeded(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	sf, _ := sctx.Register("mixed", mixedFields()...)
	rf, _ := rctx.Register("mixed", mixedFields()...)
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	rec := sf.NewRecord()
	fillMixed(t, rec)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.View(rf); ok {
		t.Error("View offered for heterogeneous layouts")
	}
}

func TestTypeExtensionUnexpectedField(t *testing.T) {
	// An evolved sender adds a field; the old receiver decodes without
	// disruption — the paper's §4.4 flexibility feature.
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	extended := append([]FieldSpec{F("new_diag", Double)}, mixedFields()...)
	sf, err := sctx.Register("mixed", extended...)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	rec := sf.NewRecord()
	fillMixed(t, rec)
	rec.MustSetFloat("new_diag", 0, 42.0)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Decode(rf)
	if err != nil {
		t.Fatal(err)
	}
	checkMixed(t, got)
}

func TestMissingFieldZeroed(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	sf, _ := sctx.Register("mixed", mixedFields()[:3]...)
	rf, _ := rctx.Register("mixed", mixedFields()...)
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	rec := sf.NewRecord()
	rec.MustSetInt("node", 0, 5)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Decode(rf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Int("node", 0); v != 5 {
		t.Errorf("node = %d", v)
	}
	if v, _ := got.Float("values", 3); v != 0 {
		t.Errorf("missing values[3] = %v", v)
	}
	if s, _ := got.String("tag"); s != "" {
		t.Errorf("missing tag = %q", s)
	}
}

func TestReflectionOverIncomingFormat(t *testing.T) {
	// A receiver with no a-priori knowledge inspects the format.
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	sf, _ := sctx.Register("telemetry", F("t", Double), Array("sensors", Float, 4))
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	if err := w.Write(sf.NewRecord()); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	fields := m.Fields()
	if len(fields) != 2 {
		t.Fatalf("got %d fields", len(fields))
	}
	if fields[0].Name != "t" || fields[0].Type != Double || fields[0].Count != 1 {
		t.Errorf("field[0] = %+v", fields[0])
	}
	if fields[1].Name != "sensors" || fields[1].Type != Float || fields[1].Count != 4 {
		t.Errorf("field[1] = %+v", fields[1])
	}
	if !strings.Contains(m.DescribeFormat(), "telemetry") {
		t.Error("DescribeFormat missing format name")
	}
	if m.WireSize() != sf.Size() {
		t.Errorf("WireSize = %d, want %d", m.WireSize(), sf.Size())
	}
}

func TestMultipleRecordsAndFormats(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	f1, _ := sctx.Register("a", F("x", Int))
	f2, _ := sctx.Register("b", F("y", Double))
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	for i := 0; i < 3; i++ {
		r1 := f1.NewRecord()
		r1.MustSetInt("x", 0, int64(i))
		if err := w.Write(r1); err != nil {
			t.Fatal(err)
		}
		r2 := f2.NewRecord()
		r2.MustSetFloat("y", 0, float64(i)+0.5)
		if err := w.Write(r2); err != nil {
			t.Fatal(err)
		}
	}
	rf1, _ := rctx.Register("a", F("x", Int))
	rf2, _ := rctx.Register("b", F("y", Double))
	r := rctx.NewReader(&buf)
	for i := 0; i < 3; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := m.Decode(rf1)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := rec.Int("x", 0); v != int64(i) {
			t.Errorf("x = %d, want %d", v, i)
		}
		m, err = r.Read()
		if err != nil {
			t.Fatal(err)
		}
		rec, err = m.Decode(rf2)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := rec.Float("y", 0); v != float64(i)+0.5 {
			t.Errorf("y = %v", v)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("end of stream: %v, want EOF", err)
	}
}

func TestDecodeInto(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	rctx := ctxFor(t, "x86")
	sf, _ := sctx.Register("mixed", mixedFields()...)
	rf, _ := rctx.Register("mixed", mixedFields()...)
	other, _ := rctx.Register("other", F("z", Int))
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	rec := sf.NewRecord()
	fillMixed(t, rec)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	out := rf.NewRecord()
	if err := m.DecodeInto(rf, out); err != nil {
		t.Fatal(err)
	}
	checkMixed(t, out)
	// Wrong-format destination rejected.
	if err := m.DecodeInto(rf, other.NewRecord()); err == nil {
		t.Error("cross-format DecodeInto accepted")
	}
}

func TestContextOptionsValidation(t *testing.T) {
	if _, err := NewContext(WithArch("pdp11")); err == nil {
		t.Error("unknown arch accepted")
	}
	if _, err := NewContext(WithConversion(ConvMode(9))); err == nil {
		t.Error("invalid conversion mode accepted")
	}
	ctx, err := NewContext(WithArch("alpha"), WithConversion(Interpreted))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.ArchName() != "alpha" {
		t.Errorf("ArchName = %q", ctx.ArchName())
	}
}

func TestRegisterValidation(t *testing.T) {
	ctx := ctxFor(t, "x86")
	if _, err := ctx.Register("empty"); err == nil {
		t.Error("empty format accepted")
	}
	if _, err := ctx.Register("bad", FieldSpec{Name: "x", Type: Type(99), Count: 1}); err == nil {
		t.Error("invalid type accepted")
	}
	if _, err := ctx.Register("dup", F("x", Int), F("x", Int)); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := ctx.Register("zero", FieldSpec{Name: "x", Type: Int, Count: 0}); err == nil {
		t.Error("zero count accepted")
	}
}

func TestCrossContextWriteRejected(t *testing.T) {
	c1 := ctxFor(t, "x86")
	c2 := ctxFor(t, "sparc-v8")
	f, _ := c2.Register("a", F("x", Int))
	w := c1.NewWriter(&bytes.Buffer{})
	if err := w.Write(f.NewRecord()); err == nil {
		t.Error("cross-context write accepted")
	}
}

func TestRecordCloneAndBytes(t *testing.T) {
	ctx := ctxFor(t, "x86")
	f, _ := ctx.Register("a", F("x", Int))
	r := f.NewRecord()
	r.MustSetInt("x", 0, 1)
	c := r.Clone()
	c.MustSetInt("x", 0, 2)
	if v, _ := r.Int("x", 0); v != 1 {
		t.Error("Clone aliases original")
	}
	if len(r.Bytes()) != f.Size() {
		t.Errorf("Bytes len %d != Size %d", len(r.Bytes()), f.Size())
	}
	if r.Format() != f {
		t.Error("Format() wrong")
	}
}

func TestFormatAccessors(t *testing.T) {
	ctx := ctxFor(t, "sparc-v8")
	f, _ := ctx.Register("mixed", mixedFields()...)
	if f.Name() != "mixed" {
		t.Errorf("Name = %q", f.Name())
	}
	if f.Size() != 112 { // sparc-v8 layout: computed in wire tests as 80 with values[4]; here values[8] adds 32
		t.Errorf("Size = %d, want 112", f.Size())
	}
	infos := f.Fields()
	if len(infos) != 7 || infos[3].Name != "tag" || infos[3].Count != 16 {
		t.Errorf("Fields() = %+v", infos)
	}
	if !strings.Contains(f.Describe(), "sparc-v8") {
		t.Error("Describe missing arch")
	}
}

func TestTypeStrings(t *testing.T) {
	for ty, want := range map[Type]string{
		Char: "char", Short: "short", Int: "int", Long: "long",
		LongLong: "long long", UShort: "unsigned short", UInt: "unsigned int",
		ULong: "unsigned long", ULongLong: "unsigned long long",
		Float: "float", Double: "double",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if Type(99).String() == "" {
		t.Error("invalid Type String empty")
	}
	if Generated.String() != "generated" || Interpreted.String() != "interpreted" {
		t.Error("ConvMode strings")
	}
}
