// Package pbio is a Go implementation of PBIO (Portable Binary I/O), the
// Natural Data Representation communication library from "Efficient Wire
// Formats for High Performance Computing" (Bustamante, Eisenhauer, Schwan,
// Widener — SC 2000).
//
// # The idea
//
// Conventional wire formats (XDR, CDR/IIOP, XML) make every sender encode
// into a common representation and every receiver decode out of it.  PBIO
// instead transmits records in the sender's native memory layout — the
// Natural Data Representation — preceded (once per format) by
// meta-information describing that layout: field names, types, sizes,
// offsets, and byte order.  Senders therefore do no encoding at all.
// Receivers compare the incoming wire format with their own native
// format, match fields by name, and convert only where the layouts
// actually differ; the conversion routine is generated at run time, once
// per wire format, and on homogeneous exchanges the record is usable
// directly out of the receive buffer.
//
// # Usage
//
// A Context holds the (possibly simulated) native architecture and the
// conversion engine.  Formats are registered from field lists or derived
// from Go structs; Writers transmit records; Readers receive messages,
// expose the incoming format for inspection (reflection), and decode into
// expected formats or Go structs (type extension: unknown incoming fields
// are ignored, missing ones are zeroed).
//
//	ctx, _ := pbio.NewContext()
//	f, _ := ctx.Register("sample",
//		pbio.F("x", pbio.Int),
//		pbio.Array("values", pbio.Double, 64),
//	)
//	w := ctx.NewWriter(conn)
//	rec := f.NewRecord()
//	rec.SetInt("x", 0, 7)
//	w.Write(rec)
//
// Because this reproduction runs on one machine, heterogeneity is
// simulated: a Context can be pinned to any modelled architecture
// (SPARC, x86, MIPS, Alpha, …) and its records are laid out — byte
// order, sizes, alignment padding — exactly as a C compiler on that
// machine would lay them out.
package pbio

import (
	"fmt"
	"sync"

	"repro/internal/abi"
	"repro/internal/convert"
	"repro/internal/dcg"
	"repro/internal/flightrec"
	"repro/internal/fmtserver"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracectx"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Type identifies the C basic type of a record field.
type Type uint8

// Field types, in C terms.  Long (and ULong) vary in size across
// architectures; the conversion machinery bridges the difference.
const (
	Char Type = iota
	Short
	Int
	Long
	LongLong
	UShort
	UInt
	ULong
	ULongLong
	Float
	Double
)

// ctype maps a public Type to the internal C type enum.
func (t Type) ctype() (abi.CType, error) {
	switch t {
	case Char:
		return abi.Char, nil
	case Short:
		return abi.Short, nil
	case Int:
		return abi.Int, nil
	case Long:
		return abi.Long, nil
	case LongLong:
		return abi.LongLong, nil
	case UShort:
		return abi.UShort, nil
	case UInt:
		return abi.UInt, nil
	case ULong:
		return abi.ULong, nil
	case ULongLong:
		return abi.ULongLong, nil
	case Float:
		return abi.Float, nil
	case Double:
		return abi.Double, nil
	}
	return 0, fmt.Errorf("pbio: invalid field type %d", t)
}

func typeFromCType(ct abi.CType) Type {
	switch ct {
	case abi.Char:
		return Char
	case abi.Short:
		return Short
	case abi.Int:
		return Int
	case abi.Long:
		return Long
	case abi.LongLong:
		return LongLong
	case abi.UShort:
		return UShort
	case abi.UInt:
		return UInt
	case abi.ULong:
		return ULong
	case abi.ULongLong:
		return ULongLong
	case abi.Float:
		return Float
	}
	return Double
}

// String returns the C spelling of the type.
func (t Type) String() string {
	ct, err := t.ctype()
	if err != nil {
		return fmt.Sprintf("type(%d)", uint8(t))
	}
	return ct.String()
}

// FieldSpec declares one field of a record format.
type FieldSpec struct {
	Name  string
	Type  Type
	Count int // 1 for scalars, >1 for fixed-size arrays
	// Sub, when non-empty, makes this a nested structure field (Type is
	// ignored): the record embeds Count sub-records with these fields,
	// laid out as a C compiler would lay out a nested struct.
	Sub []FieldSpec
}

// F declares a scalar field.
func F(name string, t Type) FieldSpec { return FieldSpec{Name: name, Type: t, Count: 1} }

// Array declares a fixed-size array field of n elements.
func Array(name string, t Type, n int) FieldSpec { return FieldSpec{Name: name, Type: t, Count: n} }

// Struct declares a nested structure field.
func Struct(name string, fields ...FieldSpec) FieldSpec {
	return FieldSpec{Name: name, Count: 1, Sub: append([]FieldSpec{}, fields...)}
}

// StructArray declares a fixed-size array of nested structures.
func StructArray(name string, n int, fields ...FieldSpec) FieldSpec {
	return FieldSpec{Name: name, Count: n, Sub: append([]FieldSpec{}, fields...)}
}

// ConvMode selects the receiver-side conversion engine.
type ConvMode int

const (
	// Generated uses run-time-generated conversion programs (the
	// paper's DCG path; default).
	Generated ConvMode = iota
	// Interpreted uses the table-driven interpreted converter (the
	// paper's pre-DCG baseline, kept for comparison).
	Interpreted
)

// String names the conversion mode.
func (m ConvMode) String() string {
	if m == Interpreted {
		return "interpreted"
	}
	return "generated"
}

// Context carries the native architecture model and the conversion
// machinery shared by Writers, Readers and Formats.
type Context struct {
	arch  abi.Arch
	mode  ConvMode
	cache *dcg.Cache
	fmtsv *fmtserver.Client // nil: in-band meta (the default)

	// metaCache deduplicates meta decoding across every Reader of this
	// context, and — because identical meta bytes resolve to one
	// *wire.Format pointer — makes per-reader conversion memos hit across
	// streams.
	metaCache *transport.MetaCache

	// registrarFn/resolverFn adapt fmtsv for the transport layer.  Built
	// once in NewContext so equipping a Writer/Reader shares the closures
	// instead of allocating a pair per stream.
	registrarFn func(*wire.Format) (uint64, error)
	resolverFn  func(uint64) (*wire.Format, error)

	// Telemetry (see WithTelemetry).  met is never nil — it defaults to
	// the shared no-op set; tel, convMet and tmet are nil when disabled.
	tel     *telemetry.Registry
	met     *ctxMetrics
	convMet *convert.Metrics
	tmet    *transport.Metrics

	// Cross-hop tracing (see WithTracing).  Nil when tracing is off; the
	// wire path then pays one nil-check per send and one boolean test per
	// receive.
	tracer *tracectx.Tracer

	// flight, when set (WithFlightRecorder), journals the context's
	// discrete events — format registrations, DCG compiles, wire faults.
	// Nil-safe: a nil recorder is a valid no-op sink.
	flight *flightrec.Recorder

	planMu sync.RWMutex
	plans  map[[2]string]*convert.Plan
}

// plan returns the (cached) conversion plan from wf to nf.
func (c *Context) plan(wf, nf *wire.Format) (*convert.Plan, error) {
	key := [2]string{wf.Fingerprint(), nf.Fingerprint()}
	c.planMu.RLock()
	p := c.plans[key]
	c.planMu.RUnlock()
	if p != nil {
		return p, nil
	}
	p, err := convert.NewPlanTimed(wf, nf, c.convMet)
	if err != nil {
		return nil, err
	}
	c.planMu.Lock()
	if existing, ok := c.plans[key]; ok {
		p = existing
	} else {
		c.plans[key] = p
	}
	c.planMu.Unlock()
	return p, nil
}

// Option configures a Context.
type Option func(*Context) error

// WithArch pins the context to a modelled native architecture by name:
// "sparc-v8", "sparc-v9", "sparc-v9-64", "x86", "x86-64", "mips-o32",
// "mips-n64", "alpha", "strongarm" or "i960".  The default is "x86-64".
func WithArch(name string) Option {
	return func(c *Context) error {
		a, err := abi.ByName(name)
		if err != nil {
			return err
		}
		c.arch = a
		return nil
	}
}

// WithFormatServer connects the context to a PBIO format server (see
// cmd/pbio-fmtd).  Writers then tag streams with small global format IDs
// instead of full in-band meta-information, and Readers resolve unknown
// IDs through the server — the deployment model of the original PBIO,
// useful when many components exchange the same formats over many
// connections or files.
func WithFormatServer(addr string) Option {
	return func(c *Context) error {
		client, err := fmtserver.Dial(addr)
		if err != nil {
			return err
		}
		c.fmtsv = client
		return nil
	}
}

// WithConversion selects the conversion engine (default Generated).
func WithConversion(mode ConvMode) Option {
	return func(c *Context) error {
		if mode != Generated && mode != Interpreted {
			return fmt.Errorf("pbio: invalid conversion mode %d", mode)
		}
		c.mode = mode
		return nil
	}
}

// NewContext returns a context with the given options applied.
func NewContext(opts ...Option) (*Context, error) {
	c := &Context{
		arch:      abi.X86x64,
		mode:      Generated,
		cache:     dcg.NewCache(),
		metaCache: transport.NewMetaCache(),
		plans:     make(map[[2]string]*convert.Plan),
	}
	for _, o := range opts {
		if err := o(c); err != nil {
			return nil, err
		}
	}
	c.initTelemetry()
	if c.fmtsv != nil {
		c.fmtsv.SetTelemetry(c.tel)
		c.fmtsv.SetTracer(c.tracer)
		c.fmtsv.SetFlight(c.flight)
		c.registrarFn = func(f *wire.Format) (uint64, error) {
			id, err := c.fmtsv.Register(f)
			return uint64(id), err
		}
		c.resolverFn = func(id uint64) (*wire.Format, error) {
			return c.fmtsv.Lookup(fmtserver.FormatID(id))
		}
	}
	return c, nil
}

// ArchName returns the name of the context's native architecture model.
func (c *Context) ArchName() string { return c.arch.Name }

// Register defines a record format from field declarations, laid out for
// the context's native architecture.
func (c *Context) Register(name string, fields ...FieldSpec) (*Format, error) {
	s, err := buildSchema(name, fields)
	if err != nil {
		return nil, err
	}
	wf, err := wire.Layout(s, &c.arch)
	if err != nil {
		return nil, err
	}
	c.flight.Emit(flightrec.KindMetaRegister, wf.Name, 0, int64(wf.Size), 0)
	return &Format{ctx: c, wf: wf, met: c.bindFormatMetrics(wf.Name)}, nil
}

func buildSchema(name string, fields []FieldSpec) (*wire.Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("pbio: format %q has no fields", name)
	}
	s := &wire.Schema{Name: name, Fields: make([]wire.FieldSpec, len(fields))}
	for i, f := range fields {
		if f.Sub != nil {
			sub, err := buildSchema(name+"."+f.Name, f.Sub)
			if err != nil {
				return nil, err
			}
			s.Fields[i] = wire.FieldSpec{Name: f.Name, Count: f.Count, Sub: sub}
			continue
		}
		ct, err := f.Type.ctype()
		if err != nil {
			return nil, fmt.Errorf("pbio: field %q: %w", f.Name, err)
		}
		s.Fields[i] = wire.FieldSpec{Name: f.Name, Type: ct, Count: f.Count}
	}
	return s, nil
}

// Format is a registered record format bound to a context.
type Format struct {
	ctx *Context
	wf  *wire.Format
	met formatMetrics // resolved at Register; zero value when telemetry is off

	// Trace-extended variant of the format (see trace.go), laid out on
	// first sampled send and reused for every traced record after.
	traceOnce sync.Once
	traceWF   *wire.Format
	traceOff  int
	traceErr  error
}

// Name returns the format name.
func (f *Format) Name() string { return f.wf.Name }

// Size returns the native record size in bytes, including padding.
func (f *Format) Size() int { return f.wf.Size }

// Describe renders the format's layout in human-readable form.
func (f *Format) Describe() string { return f.wf.String() }

// Fields returns descriptions of the format's fields.
func (f *Format) Fields() []FieldInfo { return fieldInfos(f.wf) }

// FieldInfo describes one field of a format — the information PBIO's
// reflection support exposes for incoming messages.
type FieldInfo struct {
	Name   string
	Type   Type
	Count  int
	Size   int // element size in bytes
	Offset int // byte offset within the record
	// Struct is true for nested structure fields; Fields then describes
	// the nested format and Type is meaningless.
	Struct bool
	Fields []FieldInfo
}

// Spec converts the field description back into a declaration, so a
// receiver can re-register an incoming format locally (see pbio-dump and
// the visualization example).
func (fi FieldInfo) Spec() FieldSpec {
	spec := FieldSpec{Name: fi.Name, Type: fi.Type, Count: fi.Count}
	if fi.Struct {
		spec.Sub = make([]FieldSpec, len(fi.Fields))
		for i, sub := range fi.Fields {
			spec.Sub[i] = sub.Spec()
		}
	}
	return spec
}

func fieldInfos(wf *wire.Format) []FieldInfo {
	out := make([]FieldInfo, len(wf.Fields))
	for i := range wf.Fields {
		fl := &wf.Fields[i]
		out[i] = FieldInfo{
			Name:   fl.Name,
			Count:  fl.Count,
			Size:   fl.Size,
			Offset: fl.Offset,
		}
		if fl.IsStruct() {
			out[i].Struct = true
			out[i].Fields = fieldInfos(fl.Sub)
		} else {
			out[i].Type = typeFromCType(fl.Type)
		}
	}
	return out
}
