package pbio

import (
	"bytes"
	"strings"
	"testing"
)

func TestMessageAssess(t *testing.T) {
	sctx := ctxFor(t, "sparc-v9-64")
	rctx := ctxFor(t, "x86")
	sf, err := sctx.Register("m", F("a", Long), F("b", Double))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rctx.Register("m", F("a", Long), F("b", Double), F("c", Int))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sctx.NewWriter(&buf).Write(sf.NewRecord()); err != nil {
		t.Fatal(err)
	}
	m, err := rctx.NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Assess(rf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Exact || c.Lossless {
		t.Errorf("LP64 long -> ILP32 long with a missing field: %+v", c)
	}
	if len(c.Narrowed) != 1 || c.Narrowed[0] != "a" {
		t.Errorf("Narrowed = %v", c.Narrowed)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "c" {
		t.Errorf("Missing = %v", c.Missing)
	}
	s := c.String()
	for _, want := range []string{"caveats", "narrowed", "missing"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}

	// A same-layout expectation reports exact.
	same, err := rctx.Register("m2", F("a", Long), F("b", Double))
	if err != nil {
		t.Fatal(err)
	}
	_ = same
	sctx2 := ctxFor(t, "x86")
	sf2, err := sctx2.Register("m2", F("a", Long), F("b", Double))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := sctx2.NewWriter(&buf2).Write(sf2.NewRecord()); err != nil {
		t.Fatal(err)
	}
	m2, err := rctx.NewReader(&buf2).Read()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m2.Assess(same)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Exact {
		t.Errorf("identical layouts not exact: %+v", c2)
	}
}
