package pbio

import (
	"fmt"
	"time"

	"repro/internal/convert"
	"repro/internal/dcg"
	"repro/internal/native"
	"repro/internal/wire"
)

// RecordBatch is a reusable destination for the fused batch decode path:
// n native records of one format, back to back at the format's native
// stride in a single buffer.  The buffer grows to the largest batch seen
// and is then reused, so steady-state batch decoding allocates nothing.
// A RecordBatch is not safe for concurrent use.
type RecordBatch struct {
	fmt *Format
	buf []byte
	n   int

	// cur is the reusable record View returns; like a Reader's Message,
	// one struct serves the batch's lifetime so per-record access on the
	// fused path allocates nothing.
	cur Record
}

// NewRecordBatch returns an empty batch of this format.
func (f *Format) NewRecordBatch() *RecordBatch {
	return &RecordBatch{fmt: f}
}

// Format returns the batch's record format.
func (b *RecordBatch) Format() *Format { return b.fmt }

// Len returns the number of records the last decode produced.
func (b *RecordBatch) Len() int { return b.n }

// Bytes returns the native image of record i.  Mutating it mutates the
// batch.
func (b *RecordBatch) Bytes(i int) []byte {
	size := b.fmt.wf.Size
	return b.buf[i*size : (i+1)*size : (i+1)*size]
}

// View returns record i without copying.  The returned record aliases
// the batch buffer AND is reused by the next View call — treat it like a
// Reader's Message: read it before asking for the next one, and use
// Record for a copy that outlives the batch.
func (b *RecordBatch) View(i int) *Record {
	b.cur.fmt = b.fmt
	b.cur.rec = native.Record{Format: b.fmt.wf, Buf: b.Bytes(i)}
	return &b.cur
}

// Record returns an owned copy of record i.
func (b *RecordBatch) Record(i int) *Record {
	rec := b.fmt.NewRecord()
	copy(rec.rec.Buf, b.Bytes(i))
	return rec
}

// ensure sizes the buffer for n records and returns it.  Growth is
// amortized: the buffer only ever gets larger, so a stream of equal-size
// batches allocates once.
func (b *RecordBatch) ensure(n int) []byte {
	need := n * b.fmt.wf.Size
	if cap(b.buf) < need {
		b.buf = make([]byte, need)
	}
	b.buf = b.buf[:need]
	b.n = n
	return b.buf
}

// DecodeBatch converts this message — and, when it is the current record
// of a batch frame, every remaining record of that frame — into out with
// a single fused conversion: one program fetch, one bounds check and one
// kernel sweep per frame instead of per record (dcg.CompileBatch).  It
// returns the number of records decoded; out's previous contents are
// replaced.  After a multi-record decode the frame is consumed: the next
// Read returns the message after the batch.
//
// Messages that are not batched — or that are the last record of their
// frame — decode singly through the same engine DecodeInto uses, so
// callers can use DecodeBatch unconditionally on a mixed stream.
//
//pbio:hotpath noalloc=0 fused batch decode; pinned by pbio/alloc_test.go TestAllocsBatchDecode
func (m *Message) DecodeBatch(expected *Format, out *RecordBatch) (int, error) {
	if out.fmt != expected {
		return 0, fmt.Errorf("pbio: batch is of format %q, not %q", out.fmt.Name(), expected.Name())
	}
	var payload []byte
	if r := m.r; r != nil && !m.traced {
		payload = r.tr.TakeBatch(&m.msg)
	}
	if payload == nil {
		// Single record (not batched, frame tail, or a faked message):
		// the ordinary per-record engine, into slot 0.
		dst := out.ensure(1)
		if err := m.convert(expected, dst); err != nil {
			out.n = 0
			return 0, err
		}
		return 1, nil
	}
	n := len(payload) / m.msg.Format.Size
	dst := out.ensure(n)
	if err := m.convertBatch(expected, dst, payload, n); err != nil {
		out.n = 0
		return 0, err
	}
	return n, nil
}

// convertBatch runs the context's conversion engine over a whole batch
// payload.  The interpreted engine has no fused form; it hoists the plan
// and interpreter out of the loop and converts record by record, which
// keeps the Interpreted-mode baseline honest in benchmarks.
func (m *Message) convertBatch(expected *Format, dst, src []byte, n int) error {
	ws, ns := m.msg.Format.Size, expected.wf.Size
	if m.ctx.mode == Interpreted {
		plan, err := m.interpPlan(expected.wf)
		if err != nil {
			return err
		}
		it := convert.NewInterp(plan)
		if m.ctx.met.enabled {
			it.SetMetrics(m.ctx.convMet)
		}
		for i := 0; i < n; i++ {
			if err := it.Convert(dst[i*ns:(i+1)*ns], src[i*ws:(i+1)*ws]); err != nil {
				return err
			}
		}
		if m.ctx.met.enabled {
			expected.met.decInterp.Add(int64(n))
		}
		return nil
	}
	bp, err := m.batchProgram(expected.wf)
	if err != nil {
		return err
	}
	if m.ctx.met.enabled {
		start := time.Now()
		if _, err := bp.ConvertBatch(dst, src); err != nil {
			return err
		}
		expected.met.decBatch.Add(int64(n))
		m.ctx.met.dcgBatchNanos.Observe(time.Since(start).Nanoseconds())
		return nil
	}
	_, err = bp.ConvertBatch(dst, src)
	return err
}

// batchProgram is program's counterpart for the fused batch engine,
// consulting the reader's memo before the shared cache.  The batch memo
// coexists with the per-record one: a reader that mixes DecodeInto and
// DecodeBatch on one format pair keeps both programs hot.
func (m *Message) batchProgram(nf *wire.Format) (*dcg.BatchProgram, error) {
	if r := m.r; r != nil && r.memoWF == m.msg.Format && r.memoNF == nf && r.memoBatch != nil {
		return r.memoBatch, nil
	}
	bp, err := m.ctx.cache.GetBatch(m.msg.Format, nf)
	if err != nil {
		return nil, err
	}
	if r := m.r; r != nil {
		if r.memoWF != m.msg.Format || r.memoNF != nf {
			// New format pair: the per-record memo entries are stale.
			r.memoProg, r.memoPlan = nil, nil
		}
		r.memoWF, r.memoNF, r.memoBatch = m.msg.Format, nf, bp
	}
	return bp, nil
}
