package pbio

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

func TestReaderRejectsCorruptStream(t *testing.T) {
	ctx := ctxFor(t, "x86")
	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("this is not a pbio stream at all...")},
		{"bad magic", []byte{0xff, 0xff, 2, 0, 0, 0, 1, 0, 0, 0, 0}},
		{"truncated header", []byte{0x50}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := ctx.NewReader(bytes.NewReader(c.data))
			if _, err := r.Read(); err == nil || err == io.EOF {
				t.Errorf("corrupt stream: %v", err)
			}
		})
	}
	// Empty stream is clean EOF.
	if _, err := ctx.NewReader(bytes.NewReader(nil)).Read(); err != io.EOF {
		t.Errorf("empty stream: %v, want EOF", err)
	}
}

func TestReaderTruncatedMidRecord(t *testing.T) {
	sctx := ctxFor(t, "sparc-v8")
	f, err := sctx.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	rec := f.NewRecord()
	for i := 0; i < 2; i++ {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	rctx := ctxFor(t, "x86")
	data := buf.Bytes()[:buf.Len()-5]
	r := rctx.NewReader(bytes.NewReader(data))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first record should be intact: %v", err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("truncated second record: %v, want a real error", err)
	}
}

func TestMessageViewInvalidatedSemantics(t *testing.T) {
	// Documented contract: a View aliases the receive buffer and is only
	// valid until the next Read.  Verify the aliasing (first view's data
	// matches first record at read time).
	ctx := ctxFor(t, "x86")
	f, err := ctx.Register("v", F("x", Int))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := ctx.NewWriter(&buf)
	for i := 0; i < 2; i++ {
		rec := f.NewRecord()
		rec.MustSetInt("x", 0, int64(i+1))
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	r := ctx.NewReader(&buf)
	m1, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	v1, ok, err := m1.View(f)
	if err != nil || !ok {
		t.Fatalf("View: %v, %v", ok, err)
	}
	if x, _ := v1.Int("x", 0); x != 1 {
		t.Errorf("first view x = %d", x)
	}
	// Decode (copying) keeps data past the next Read.
	owned, err := m1.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if x, _ := owned.Int("x", 0); x != 1 {
		t.Errorf("owned record corrupted by next Read: x = %d", x)
	}
}

func TestContextPlanCacheConcurrency(t *testing.T) {
	// Many goroutines decoding the same wire format through one context
	// must share plans/programs without racing (run with -race).
	sctx := ctxFor(t, "sparc-v8")
	f, err := sctx.Register("mixed", mixedFields()...)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	w := sctx.NewWriter(&stream)
	rec := f.NewRecord()
	fillMixed(t, rec)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	raw := stream.Bytes()

	for _, mode := range []ConvMode{Generated, Interpreted} {
		rctx := ctxFor(t, "x86", WithConversion(mode))
		rf, err := rctx.Register("mixed", mixedFields()...)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					r := rctx.NewReader(bytes.NewReader(raw))
					m, err := r.Read()
					if err != nil {
						t.Error(err)
						return
					}
					got, err := m.Decode(rf)
					if err != nil {
						t.Error(err)
						return
					}
					if v, _ := got.Int("node", 0); v != 12 {
						t.Errorf("node = %d", v)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

func TestWriterMultipleFormatsInterleaved(t *testing.T) {
	sctx := ctxFor(t, "sparc-v9-64")
	rctx := ctxFor(t, "x86")
	fa, _ := sctx.Register("a", F("x", Long))
	fb, _ := sctx.Register("b", Array("s", Char, 4))
	var buf bytes.Buffer
	w := sctx.NewWriter(&buf)
	for i := 0; i < 4; i++ {
		ra := fa.NewRecord()
		ra.MustSetInt("x", 0, int64(i)<<33) // needs 8-byte long on the wire
		if err := w.Write(ra); err != nil {
			t.Fatal(err)
		}
		rb := fb.NewRecord()
		rb.MustSetString("s", "ab")
		if err := w.Write(rb); err != nil {
			t.Fatal(err)
		}
	}
	// Receiver expects a narrower long: values above 2^32 truncate (C
	// semantics) — use a matching LP64 receiver to keep them.
	rfa, _ := rctx.Register("a", F("x", LongLong))
	_ = rfa // name mismatch exercise below
	r := rctx.NewReader(&buf)
	for i := 0; i < 4; i++ {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if m.FormatName() != "a" {
			t.Fatalf("message %d: format %q", i, m.FormatName())
		}
		// Decode into a same-name Long field (4 bytes on x86): the value
		// truncates — verify deterministic C-like behavior.
		rf, _ := rctx.Register("a", F("x", Long))
		rec, err := m.Decode(rf)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := rec.Int("x", 0); v != 0 {
			t.Errorf("truncated high bits remain: %d", v)
		}
		if m, err = r.Read(); err != nil {
			t.Fatal(err)
		}
		if m.FormatName() != "b" {
			t.Fatalf("message %d: format %q", i, m.FormatName())
		}
	}
}
