package pbio

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// File I/O.  PBIO began life as a portable binary file format for
// instrumentation and trace data: records are written in the producer's
// native layout with meta-information in-band, so any later reader — on
// any architecture, with or without a-priori knowledge of the formats —
// can interpret the file.  FileWriter and FileReader wrap Writer and
// Reader with buffering and lifecycle management for that use.

// FileWriter writes records to a PBIO file.
type FileWriter struct {
	*Writer
	f  *os.File
	bw *bufio.Writer
}

// CreateFile creates (or truncates) a PBIO file for writing.
func (c *Context) CreateFile(path string) (*FileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pbio: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &FileWriter{Writer: c.NewWriter(bw), f: f, bw: bw}, nil
}

// Close flushes buffered records and closes the file.
func (w *FileWriter) Close() error {
	if err := w.Writer.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("pbio: flushing batched records to %s: %w", w.f.Name(), err)
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("pbio: flushing %s: %w", w.f.Name(), err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("pbio: closing: %w", err)
	}
	return nil
}

// FileReader reads records from a PBIO file.
type FileReader struct {
	*Reader
	f *os.File
}

// OpenFile opens a PBIO file for reading.
func (c *Context) OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pbio: %w", err)
	}
	return &FileReader{Reader: c.NewReader(bufio.NewReader(f)), f: f}, nil
}

// Close releases the reader's pooled receive buffer and closes the
// file.  Records decoded from it remain valid; zero-copy views do not.
func (r *FileReader) Close() error {
	r.Reader.Close()
	return r.f.Close()
}

// ReadAll decodes every remaining record in the file into the expected
// format (a convenience for analysis tools; streaming callers should use
// Read).
func (r *FileReader) ReadAll(expected *Format) ([]*Record, error) {
	var out []*Record
	for {
		m, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		rec, err := m.Decode(expected)
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
