package pbio

import (
	"repro/internal/convert"
	"repro/internal/dcg"
	"repro/internal/flightrec"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// WithFlightRecorder attaches a flight recorder to the context: format
// registrations, DCG compilations and transport faults (checksum
// failures, deadline timeouts) on the context's streams are journaled
// as discrete events.  All emission sites are cold — registration,
// compilation, error paths — so the recorder costs the hot path
// nothing; see internal/flightrec for the journal itself.
func WithFlightRecorder(r *flightrec.Recorder) Option {
	return func(c *Context) error {
		c.flight = r
		return nil
	}
}

// FlightRecorder returns the context's flight recorder (nil when none
// is attached).
func (c *Context) FlightRecorder() *flightrec.Recorder { return c.flight }

// WithTelemetry attaches a telemetry registry to the context.  Every
// Writer, Reader, Format and conversion engine created from the context
// then records wire-path metrics on it: records and bytes moved, the
// conversion path taken per decode (zero-copy / interpreted / DCG —
// the paper's three receive regimes), plan-build and codegen latency,
// and DCG cache traffic.  Serve the registry over HTTP with
// internal/telemetry.Serve, or read it programmatically via Snapshot.
//
// Telemetry is off by default and its disabled cost is one nil-check
// branch per event, so contexts without a registry perform as before.
func WithTelemetry(r *telemetry.Registry) Option {
	return func(c *Context) error {
		c.tel = r
		return nil
	}
}

// Telemetry returns the context's registry (nil when telemetry is off).
func (c *Context) Telemetry() *telemetry.Registry { return c.tel }

// Conversion path label values, matching the paper's receive regimes.
const (
	pathZeroCopy = "zero_copy"
	pathInterp   = "interp"
	pathDCG      = "dcg"
	pathDCGBatch = "dcg_batch"
)

// ctxMetrics is the pbio-level metric set.  The zero value is a valid
// no-op set (all handles nil); contexts without telemetry share
// nopCtxMetrics so instrumented code never nil-checks the struct.
type ctxMetrics struct {
	enabled bool

	recordsSent *telemetry.CounterVec // labels: format
	recordsRecv *telemetry.Counter

	decodes     *telemetry.CounterVec   // labels: format, path
	decodeNanos *telemetry.HistogramVec // labels: path

	// Pre-resolved per-path histograms (With is a lock + map lookup;
	// resolve once here, off the hot path).  dcgBatchNanos observes one
	// latency per batch frame, not per record — the decodes counter
	// still advances per record, so records/observation is the realized
	// batch size.
	interpNanos   *telemetry.Histogram
	dcgNanos      *telemetry.Histogram
	dcgBatchNanos *telemetry.Histogram
}

var nopCtxMetrics = &ctxMetrics{}

// initTelemetry wires the context's engines to the registry — and the
// flight recorder, which works with or without a registry.  Called
// once from NewContext after options are applied.
func (c *Context) initTelemetry() {
	if c.flight != nil {
		c.cache.SetFlight(c.flight)
	}
	if c.tel == nil {
		c.met = nopCtxMetrics
		if c.flight != nil {
			// No registry, but transport faults must still reach the
			// journal: give the streams a metric set that is empty
			// except for the flight sink.  (Never mutate the shared
			// no-op set.)
			c.tmet = &transport.Metrics{Flight: c.flight}
		}
		return
	}
	if c.tracer != nil {
		// Span/sampling counters plus /debug/trace.json on the registry's
		// HTTP surface.
		c.tracer.ExportMetrics(c.tel)
	}
	c.convMet = convert.NewMetrics(c.tel)
	c.cache.SetMetrics(dcg.NewMetrics(c.tel), c.convMet)
	c.tmet = transport.NewMetrics(c.tel)
	if c.flight != nil {
		// NewMetrics built a fresh set for this registry; attaching the
		// sink here never touches the shared no-op set.
		c.tmet.Flight = c.flight
		c.flight.ExportMetrics(c.tel)
	}
	decodeNanos := c.tel.HistogramVec("pbio_decode_nanos",
		"Latency of one record conversion on the receive path, nanoseconds.", "path")
	c.met = &ctxMetrics{
		enabled: true,
		recordsSent: c.tel.CounterVec("pbio_records_sent_total",
			"Records transmitted, by format.", "format"),
		recordsRecv: c.tel.Counter("pbio_records_received_total",
			"Data messages received."),
		decodes: c.tel.CounterVec("pbio_decodes_total",
			"Records decoded, by expected format and conversion path "+
				"(zero_copy, interp, dcg, dcg_batch — the paper's three "+
				"receive regimes plus the fused batch path).",
			"format", "path"),
		decodeNanos:   decodeNanos,
		interpNanos:   decodeNanos.With(pathInterp),
		dcgNanos:      decodeNanos.With(pathDCG),
		dcgBatchNanos: decodeNanos.With(pathDCGBatch),
	}
}

// formatMetrics is the per-Format resolved counter set, bound once at
// Register time so the send and decode hot paths touch no maps and
// build no label keys.  The zero value is a valid no-op set.
type formatMetrics struct {
	sent      *telemetry.Counter
	decZero   *telemetry.Counter
	decInterp *telemetry.Counter
	decDCG    *telemetry.Counter
	decBatch  *telemetry.Counter
}

// bindFormatMetrics resolves the per-format counters for name.
func (c *Context) bindFormatMetrics(name string) formatMetrics {
	if !c.met.enabled {
		return formatMetrics{}
	}
	return formatMetrics{
		sent:      c.met.recordsSent.With(name),
		decZero:   c.met.decodes.With(name, pathZeroCopy),
		decInterp: c.met.decodes.With(name, pathInterp),
		decDCG:    c.met.decodes.With(name, pathDCG),
		decBatch:  c.met.decodes.With(name, pathDCGBatch),
	}
}
