# Convenience targets for the pbio-go reproduction.

GO ?= go

.PHONY: all build vet vet-std vet-pbio vet-report lint pbiovet test test-race chaos fuzz bench bench-smoke bench-compare bench-all figures examples outputs clean

all: build vet test

build:
	$(GO) build ./...

# vet runs the standard Go vet plus pbiovet, the repo's own analyzer
# suite: the shape checks (tagcheck, speccheck, endiancheck, senterr,
# tracecheck) and the flow-aware checks (poolcheck, lockcheck,
# atomiccheck, alloccheck).  Any diagnostic fails the target, and
# therefore `make all` and CI.  `pbiovet -list` documents the suite;
# `bin/pbiovet -run=name ./...` runs one analyzer.
vet: vet-std vet-pbio

vet-std:
	$(GO) vet ./...

vet-pbio: pbiovet
	$(GO) vet -vettool=bin/pbiovet ./...

# vet-report writes every pbiovet diagnostic to vet_report.txt as a
# stable LC_ALL=C-sorted file:line:col list — the CI artifact.  The
# target fails when any diagnostic exists, so a new finding breaks the
# build and the artifact shows exactly what appeared.
vet-report: pbiovet
	@$(GO) vet -vettool=bin/pbiovet ./... 2>&1 | grep -v '^#' | LC_ALL=C sort > vet_report.txt; true
	@if [ -s vet_report.txt ]; then \
		echo "pbiovet diagnostics (vet_report.txt):"; cat vet_report.txt; exit 1; \
	else \
		echo "pbiovet: no diagnostics" | tee vet_report.txt; \
	fi

lint: vet

pbiovet:
	@mkdir -p bin
	$(GO) build -o bin/pbiovet ./cmd/pbiovet

test: chaos
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Fault-injection soak: N producers x M consumers through the relay over
# links that fragment, starve, corrupt, and drop (internal/faultnet).
# Short matrix by default; CHAOS_LONG=1 runs the full-length soak, and
# CHAOS_SEED=<seed> replays a failure printed by a previous run.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|FaultyLink|BroadcastDropClose' \
		./internal/relay/ ./internal/transport/

# Short runs of the wire-format fuzz targets.
fuzz:
	$(GO) test -run xxx -fuzz FuzzReadFrame -fuzztime 20s ./internal/transport/
	$(GO) test -run xxx -fuzz FuzzReadMessage -fuzztime 20s ./internal/transport/
	$(GO) test -run xxx -fuzz FuzzDecodeMeta -fuzztime 20s ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzSubscriptionFrame -fuzztime 20s ./internal/transport/
	$(GO) test -run xxx -fuzz FuzzReadJournal -fuzztime 20s ./internal/flightrec/
	$(GO) test -run xxx -fuzz FuzzConvertBatch -fuzztime 20s ./internal/dcg/

# bench runs the perf-trajectory benchmarks (pbio public API + DCG
# engine) and stores them as a machine-readable artifact.  BENCHTIME
# controls depth; bench-smoke is the CI-speed variant (one iteration per
# benchmark: verifies the benchmarks run, produces no timing signal).
BENCHTIME ?= 1s
BENCHOUT  ?= BENCH_pr10.json

bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -benchmem -run xxx ./pbio/ ./internal/dcg/ \
		| $(GO) run ./cmd/benchjson > $(BENCHOUT)
	@echo "wrote $(BENCHOUT)"

bench-smoke:
	$(MAKE) bench BENCHTIME=1x

# bench-compare re-runs the benchmarks and diffs them against the
# checked-in baseline (BENCHBASE): allocs/op must not grow at all, B/op
# and ns/op within thresholds.  A regression exits nonzero and fails CI.
# COMPAREBENCHTIME must be enough iterations to amortize one-time setup
# (1x smoke artifacts make allocs/op meaningless); COMPAREFLAGS tunes
# the thresholds — CI passes -ns-threshold=-1 because the baseline's
# wall-clock numbers come from different hardware.
BENCHBASE        ?= BENCH_pr5.json
COMPAREBENCHTIME ?= 5000x
COMPAREFLAGS     ?=

bench-compare:
	$(MAKE) bench BENCHOUT=bench_current.json BENCHTIME=$(COMPAREBENCHTIME)
	$(GO) run ./cmd/benchjson -compare $(COMPAREFLAGS) $(BENCHBASE) bench_current.json

# Full benchmark sweep over every package (human-readable).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure of the paper plus the extension tables.
figures:
	$(GO) run ./cmd/wireperf
	$(GO) run ./cmd/wireperf -gencost
	$(GO) run ./cmd/wireperf -nested
	$(GO) run ./cmd/wireperf -homo
	$(GO) run ./cmd/wireperf -wire
	$(GO) run ./cmd/wireperf -xmlrt
	$(GO) run ./cmd/wireperf -pairs
	$(GO) run ./cmd/wireperf -live

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/visualization
	$(GO) run ./examples/evolution
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/brokered

# The artifact files the exercise asks for.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt vet_report.txt
	rm -rf bin
